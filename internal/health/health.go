// Package health is the convergence health monitor: a per-run interpreter
// for the telemetry the substrate already records. It subscribes to the
// iteration stream (telemetry.Recorder sink) and the BSP superstep feed
// (engine.ShardLoop barrier accounting) and derives, every iteration, the
// signals an operator needs to tell a healthy ν-LPA run from a sick one —
// flip-rate decay slope and ETA-to-convergence (the geometric ΔN decay the
// paper's Figure 4 shows), frontier-occupancy trend, an oscillation score
// (label oscillation is the failure mode semi-synchronous scheduling exists
// to prevent), per-shard straggler skew and barrier-wait share, and
// stall/livelock suspicion corroborating the fault-injection watchdog.
//
// A Monitor surfaces three ways: live (Subscribe feeds the SSE endpoint and
// the -health terminal line), aggregate (engine_health_* metric families and
// health-state transitions as span events with exemplars), and post-mortem
// (a bounded ring of the last frames snapshotted into a schema-versioned
// FlightBundle on fault, degradation, deadline, or request — see flight.go).
//
// The zero-alloc-when-disabled contract holds throughout: a nil *Monitor is
// a no-op on every method (the trace.Span convention), and a Recorder with
// no sink attached pays one mutex round-trip per superstep and nothing more.
package health

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nulpa/internal/telemetry"
	"nulpa/internal/trace"
)

// State is the monitor's coarse verdict for a run at an iteration.
type State string

const (
	// StateWarmup: too few iterations to judge (fewer than three frames).
	StateWarmup State = "warmup"
	// StateConverging: ΔN is decaying geometrically (negative log-slope).
	StateConverging State = "converging"
	// StateHealthy: no pathology detected, but no clear decay either —
	// typical for Pick-Less rounds and early plateau phases.
	StateHealthy State = "healthy"
	// StateOscillating: the flip count has failed to decay across the
	// sliding window while staying above the convergence threshold — the
	// label-oscillation / livelock signature.
	StateOscillating State = "oscillating"
	// StateStraggling: one shard's superstep time dominates the barrier
	// (max/median skew at or above Config.StragglerSkew).
	StateStraggling State = "straggling"
	// StateStalled: the iteration took StallFactor× the recent median wall
	// time — an SM stall, a livelocked kernel, or a rollback/retry storm.
	StateStalled State = "stalled"
	// StateCollapse: the quality plane reports modularity has fallen
	// Config.CollapseDrop below the run's peak — the partition is degrading
	// even if the flip counters look healthy (the quality-collapse verdict
	// only exists when a quality observer feeds the monitor).
	StateCollapse State = "quality-collapse"
)

// stallFloor is the minimum iteration wall time before a duration blow-up
// counts as a stall; below it, scheduler jitter dominates and the
// median-multiple test would false-positive on microsecond iterations.
const stallFloor = 2 * time.Millisecond

// Frame is one iteration's health snapshot: the raw work ledger joined with
// the derived signals. It is the SSE stream payload and the flight-recorder
// ring element (schema documented in DESIGN.md §13).
type Frame struct {
	// Iter is the zero-based iteration index.
	Iter int `json:"iter"`
	// Time stamps when the frame was derived.
	Time time.Time `json:"time"`
	// DurationUS is the iteration wall time in microseconds.
	DurationUS float64 `json:"durationUs"`
	// PickLess marks a Pick-Less restricted round (excluded from decay and
	// oscillation fits: its suppressed ΔN is intentional, not progress).
	PickLess bool `json:"pickLess,omitempty"`

	// Raw work counters for the iteration (telemetry.IterRecord subset).
	DeltaN         int64 `json:"deltaN"`
	Moves          int64 `json:"moves"`
	Reverts        int64 `json:"reverts,omitempty"`
	Retries        int64 `json:"retries,omitempty"`
	EdgeVisits     int64 `json:"edgeVisits,omitempty"`
	ActiveVertices int64 `json:"activeVertices,omitempty"`

	// FlipRate is ΔN/|V| (zero when the vertex count is unknown).
	FlipRate float64 `json:"flipRate"`
	// FrontierOccupancy is ActiveVertices/|V|.
	FrontierOccupancy float64 `json:"frontierOccupancy"`
	// FrontierTrend is the per-iteration slope of FrontierOccupancy over
	// the sliding window (negative = frontier shrinking, as it should).
	FrontierTrend float64 `json:"frontierTrend"`
	// DecaySlope is the least-squares slope of ln(ΔN) per iteration over
	// the window's non-Pick-Less frames; healthy runs sit well below zero.
	DecaySlope float64 `json:"decaySlope"`
	// ETAIterations extrapolates the decay slope to the convergence
	// threshold: iterations remaining, 0 when already below threshold,
	// -1 when the slope does not predict convergence.
	ETAIterations float64 `json:"etaIterations"`
	// OscillationScore is the fraction of consecutive window steps where
	// ΔN failed to decay; ≥ 0.5 with ΔN above threshold flags oscillation.
	OscillationScore float64 `json:"oscillationScore"`
	// DurationFactor is this iteration's wall time over the window median;
	// StallSuspect is set when it reaches Config.StallFactor.
	DurationFactor float64 `json:"durationFactor"`
	StallSuspect   bool    `json:"stallSuspect,omitempty"`

	// Sharded-run signals, populated from the superstep feed (zero-valued
	// on single-device runs; StragglerShard is -1 when no shard stands out).
	Shards         int     `json:"shards,omitempty"`
	StragglerShard int     `json:"stragglerShard"`
	StragglerSkew  float64 `json:"stragglerSkew,omitempty"`
	BarrierWaitUS  float64 `json:"barrierWaitUs,omitempty"`
	// BarrierWaitShare is barrier idle time over total shard-seconds of
	// the superstep — the fraction of the device fleet wasted waiting.
	BarrierWaitShare float64 `json:"barrierWaitShare,omitempty"`
	// HaloLabels is the number of ghost labels exchanged at the barrier.
	HaloLabels int64 `json:"haloLabels,omitempty"`

	// Quality-plane signals, populated when a quality observer feeds the
	// monitor (HasQuality false ⇒ the rest are zero-valued).
	HasQuality bool `json:"hasQuality,omitempty"`
	// Modularity is the live incremental estimate after this iteration.
	Modularity float64 `json:"modularity,omitempty"`
	// DeltaQ is the modularity change this iteration contributed.
	DeltaQ float64 `json:"deltaQ,omitempty"`
	// QualityDrift is |estimate − exact| at the last sampled recompute
	// (present only on sampled iterations).
	QualityDrift float64 `json:"qualityDrift,omitempty"`
	// Communities is the live community count.
	Communities int `json:"communities,omitempty"`
	// GiantShare is the largest community's share of |V|.
	GiantShare float64 `json:"giantShare,omitempty"`
	// SingletonRate is the fraction of vertices alone in their community.
	SingletonRate float64 `json:"singletonRate,omitempty"`
	// LabelEntropy is the Shannon entropy (nats) of the community-size
	// distribution.
	LabelEntropy float64 `json:"labelEntropy,omitempty"`
	// ChurnNMI is NMI versus the previous sampled snapshot (0 until two
	// samples exist; meaningful only when HasQuality).
	ChurnNMI float64 `json:"churnNMI,omitempty"`
	// QualityTrend is the per-iteration modularity slope over the window's
	// quality-bearing frames; |trend| ≤ PlateauEps reads as a plateau.
	QualityTrend float64 `json:"qualityTrend,omitempty"`

	// State is the verdict after folding this frame in.
	State State `json:"state"`
}

// Event is a notable moment in the run: health-state transitions, fault
// retries observed in the iteration stream, and externally recorded events
// (fallback, deadline, fault) — the flight bundle's annotation track.
type Event struct {
	Iter   int       `json:"iter"`
	Time   time.Time `json:"time"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

// Config parameterizes a Monitor. The zero value works; SetTarget supplies
// the graph size once known.
type Config struct {
	// Detector names the algorithm under observation (flight metadata).
	Detector string
	// Vertices is |V|, the flip-rate and occupancy denominator (0 = unknown).
	Vertices int
	// Threshold is the run's ΔN convergence bound (Tolerance·|V|); values
	// ≤ 1 clamp to 1 ("no change at all"), matching engine.Loop.
	Threshold float64
	// Window is the sliding-window length for the decay/oscillation fits
	// (default 8).
	Window int
	// RingSize bounds the flight-recorder frame ring (default 64).
	RingSize int
	// StallFactor is the duration-over-median multiple that flags a stall
	// (default 8).
	StallFactor float64
	// StragglerSkew is the max/median superstep-time ratio that flags a
	// straggler shard (default 2).
	StragglerSkew float64
	// CollapseDrop is how far modularity may fall below the run's peak
	// before the quality-collapse verdict fires (default 0.1).
	CollapseDrop float64
	// PlateauEps bounds |QualityTrend| for the quality-plateau signal that
	// confirms convergence (default 1e-4).
	PlateauEps float64
	// TraceID tags metric exemplars and resolves the run's spans into the
	// flight bundle.
	TraceID string
	// Span, when non-nil, receives health-state transitions as span events.
	Span *trace.Span
	// OnFrame, when non-nil, is called with every frame under the monitor
	// lock (the -health terminal line). It must not call back into the
	// Monitor.
	OnFrame func(Frame)
}

// subBuffer is each live subscriber's channel depth. The SSE writer drains
// far faster than iterations arrive; a full buffer drops the newly-arrived
// frame, accounting it in engine_health_frames_dropped_total and in the
// subscriber's own Dropped counter — the SSE endpoint disconnects such a
// client with a terminal "lagged" event instead of serving a gapped stream.
const subBuffer = 256

// maxEvents bounds the event annotation track.
const maxEvents = 64

// Monitor derives health frames for one run. It implements
// telemetry.IterSink; attach with Recorder.SetSink. All methods are safe on
// a nil receiver (no-ops) and for concurrent use.
type Monitor struct {
	mu  sync.Mutex
	cfg Config

	frames []Frame // ring of the last cfg.RingSize frames
	start  int     // ring head when len(frames) == cfg.RingSize
	total  int     // frames ever observed

	pending  superstep // shard feed for the iteration being merged
	state    State
	events   []Event
	subs     map[int]*subscriber
	nextSub  int
	closed   bool
	lastIter int

	// Quality-plane state: the record waiting to be folded into its
	// iteration's frame, the run's peak modularity (collapse reference), and
	// a bounded track of sampled (exact-recompute) records for the flight
	// bundle.
	pendingQuality telemetry.QualityRecord
	pendingQValid  bool
	peakQ          float64
	havePeakQ      bool
	qualityTrack   []telemetry.QualityRecord
}

// subscriber is one live consumer's server-side record: its buffered frame
// channel plus the count of frames dropped because the buffer was full — the
// signal the SSE endpoint uses to disconnect a lagging client rather than
// silently serve it a gapped stream.
type subscriber struct {
	ch      chan Frame
	dropped atomic.Int64
}

// Subscription is a live frame feed handed out by Subscribe. The channel has
// a fixed buffer (subBuffer); a consumer that falls further behind loses
// frames, observable via Dropped.
type Subscription struct {
	// Frames carries every frame observed after the catch-up snapshot, in
	// order. It closes when the run ends (Close) or on Cancel.
	Frames <-chan Frame
	sub    *subscriber
	cancel func()
}

// Dropped reports how many frames this subscriber has lost to backpressure.
func (s *Subscription) Dropped() int64 {
	if s == nil || s.sub == nil {
		return 0
	}
	return s.sub.dropped.Load()
}

// Cancel detaches the subscription and closes its channel. Idempotent.
func (s *Subscription) Cancel() {
	if s != nil && s.cancel != nil {
		s.cancel()
	}
}

// superstep carries one barrier's derived shard signals from
// ObserveSuperstep to the matching ObserveIteration.
type superstep struct {
	valid     bool
	iter      int
	shards    int
	straggler int
	skew      float64
	wait      time.Duration
	waitShare float64
	halo      int64
}

// New returns a Monitor observing one run. The caller must Close it when
// the run finishes so subscribers see end-of-stream and the per-state run
// gauge stays balanced.
func New(cfg Config) *Monitor {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	if cfg.StallFactor <= 0 {
		cfg.StallFactor = 8
	}
	if cfg.StragglerSkew <= 0 {
		cfg.StragglerSkew = 2
	}
	if cfg.CollapseDrop <= 0 {
		cfg.CollapseDrop = 0.1
	}
	if cfg.PlateauEps <= 0 {
		cfg.PlateauEps = 1e-4
	}
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	m := &Monitor{
		cfg:      cfg,
		state:    StateWarmup,
		subs:     map[int]*subscriber{},
		lastIter: -1,
	}
	mStateRuns.With(string(StateWarmup)).Add(1)
	return m
}

// SetTarget supplies the graph size and convergence threshold once known
// (the HTTP job learns them only after the graph is built).
func (m *Monitor) SetTarget(vertices int, threshold float64) {
	if m == nil {
		return
	}
	if threshold < 1 {
		threshold = 1
	}
	m.mu.Lock()
	m.cfg.Vertices = vertices
	m.cfg.Threshold = threshold
	m.mu.Unlock()
}

// ObserveSuperstep implements telemetry.IterSink: it reduces one barrier's
// per-shard durations to straggler/imbalance signals and holds them for the
// iteration record that follows.
func (m *Monitor) ObserveSuperstep(iter int, durs []time.Duration, barrierWait time.Duration, exchanged int64) {
	if m == nil || len(durs) == 0 {
		return
	}
	var max time.Duration
	straggler := 0
	for s, d := range durs {
		if d > max {
			max, straggler = d, s
		}
	}
	med := medianDuration(durs)
	skew := 0.0
	if med > 0 {
		skew = float64(max) / float64(med)
	}
	share := 0.0
	if max > 0 {
		share = float64(barrierWait) / (float64(len(durs)) * float64(max))
	}
	if skew < m.stragglerSkew() {
		straggler = -1
	}
	mBarrierWait.Observe(barrierWait.Seconds())

	m.mu.Lock()
	m.pending = superstep{
		valid:     true,
		iter:      iter,
		shards:    len(durs),
		straggler: straggler,
		skew:      skew,
		wait:      barrierWait,
		waitShare: share,
		halo:      exchanged,
	}
	m.mu.Unlock()
}

// ObserveQuality implements telemetry.IterSink: it holds the iteration's
// quality record for the frame derivation that follows, tracks the run's
// peak modularity (the collapse reference), and retains sampled
// (exact-recompute) records on the bounded flight track.
func (m *Monitor) ObserveQuality(rec telemetry.QualityRecord) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.pendingQuality = rec
	m.pendingQValid = true
	if !m.havePeakQ || rec.Modularity > m.peakQ {
		m.peakQ = rec.Modularity
		m.havePeakQ = true
	}
	if rec.Exact {
		if len(m.qualityTrack) >= m.cfg.RingSize {
			copy(m.qualityTrack, m.qualityTrack[1:])
			m.qualityTrack = m.qualityTrack[:len(m.qualityTrack)-1]
		}
		m.qualityTrack = append(m.qualityTrack, rec)
	}
}

// QualityTrack returns the retained sampled quality records, oldest first.
func (m *Monitor) QualityTrack() []telemetry.QualityRecord {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]telemetry.QualityRecord(nil), m.qualityTrack...)
}

func (m *Monitor) stragglerSkew() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.StragglerSkew
}

// ObserveIteration implements telemetry.IterSink: it derives the iteration's
// frame, folds in any pending superstep signals, advances the state machine,
// and fans the frame out to subscribers.
func (m *Monitor) ObserveIteration(rec telemetry.IterRecord) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}

	f := Frame{
		Iter:           rec.Iter,
		Time:           time.Now(),
		DurationUS:     float64(rec.Duration) / float64(time.Microsecond),
		PickLess:       rec.PickLess,
		DeltaN:         rec.DeltaN,
		Moves:          rec.Moves,
		Reverts:        rec.Reverts,
		Retries:        rec.Retries,
		EdgeVisits:     rec.EdgeVisits,
		ActiveVertices: rec.ActiveVertices,
		StragglerShard: -1,
		ETAIterations:  -1,
	}
	if v := m.cfg.Vertices; v > 0 {
		f.FlipRate = float64(rec.DeltaN) / float64(v)
		f.FrontierOccupancy = float64(rec.ActiveVertices) / float64(v)
	}
	if p := m.pending; p.valid && p.iter == rec.Iter {
		f.Shards = p.shards
		f.StragglerShard = p.straggler
		f.StragglerSkew = p.skew
		f.BarrierWaitUS = float64(p.wait) / float64(time.Microsecond)
		f.BarrierWaitShare = p.waitShare
		f.HaloLabels = p.halo
		m.pending.valid = false
	}
	if q := m.pendingQuality; m.pendingQValid && q.Iter == rec.Iter {
		f.HasQuality = true
		f.Modularity = q.Modularity
		f.DeltaQ = q.DeltaQ
		f.Communities = q.Communities
		f.GiantShare = q.GiantShare
		f.SingletonRate = q.SingletonRate
		f.LabelEntropy = q.Entropy
		if q.Exact {
			f.QualityDrift = q.Drift
		}
		if q.ChurnValid {
			f.ChurnNMI = q.ChurnNMI
		}
		m.pendingQValid = false
	}

	m.deriveTrends(&f)
	m.push(f)
	m.total++
	m.lastIter = rec.Iter

	prev := m.state
	m.state = m.verdict(f)
	f.State = m.state
	m.setFrameState(f)

	mFrames.Inc()
	mIterSeconds.Observe(rec.Duration.Seconds())
	mETA.Set(f.ETAIterations)
	mSlope.Set(f.DecaySlope)
	mOsc.Set(f.OscillationScore)
	mSkew.Set(f.StragglerSkew)
	mOccupancy.Set(f.FrontierOccupancy)

	if m.state != prev {
		mStateRuns.With(string(prev)).Add(-1)
		mStateRuns.With(string(m.state)).Add(1)
		mTransitions.With(string(m.state)).IncExemplar(m.cfg.TraceID)
		if m.state == StateCollapse {
			mQualityCollapses.IncExemplar(m.cfg.TraceID)
		}
		if m.cfg.Span != nil {
			m.cfg.Span.Event("health:"+string(m.state), map[string]any{
				"iter": rec.Iter,
				"from": string(prev),
			})
		}
		m.event(Event{Iter: rec.Iter, Time: f.Time, Name: "health:" + string(m.state), Detail: "from " + string(prev)})
	}
	if rec.Retries > 0 {
		m.event(Event{Iter: rec.Iter, Time: f.Time, Name: "fault:retry",
			Detail: fmt.Sprintf("recovered after %d retries", rec.Retries)})
	}

	if m.cfg.OnFrame != nil {
		m.cfg.OnFrame(f)
	}
	for _, sub := range m.subs {
		select {
		case sub.ch <- f:
		default:
			sub.dropped.Add(1)
			mFramesDropped.Inc()
		}
	}
}

// setFrameState rewrites the just-pushed ring frame's State (the verdict is
// derived after the push so the window fits include the current frame).
func (m *Monitor) setFrameState(f Frame) {
	i := len(m.frames) - 1
	if len(m.frames) == m.cfg.RingSize {
		i = (m.start + m.cfg.RingSize - 1) % m.cfg.RingSize
	}
	m.frames[i] = f
}

// deriveTrends fills the sliding-window signals of f from the ring contents
// plus f itself. Caller holds m.mu.
func (m *Monitor) deriveTrends(f *Frame) {
	w := m.lastFrames(m.cfg.Window - 1)
	w = append(w, *f)

	// Decay slope and oscillation over non-Pick-Less frames: ln(ΔN) vs iter.
	var xs, ys []float64
	pairs, rises := 0, 0
	var prevDelta int64 = -1
	for _, fr := range w {
		if fr.PickLess {
			continue
		}
		xs = append(xs, float64(fr.Iter))
		ys = append(ys, math.Log(float64(max64(fr.DeltaN, 1))))
		if prevDelta >= 0 {
			pairs++
			if fr.DeltaN >= prevDelta && fr.DeltaN > 0 {
				rises++
			}
		}
		prevDelta = fr.DeltaN
	}
	f.DecaySlope = slope(xs, ys)
	if pairs > 0 {
		f.OscillationScore = float64(rises) / float64(pairs)
	}

	th := m.cfg.Threshold
	switch {
	case float64(f.DeltaN) <= th:
		f.ETAIterations = 0
	case f.DecaySlope < -1e-6:
		eta := (math.Log(th) - math.Log(float64(f.DeltaN))) / f.DecaySlope
		f.ETAIterations = math.Min(eta, 1e6)
	default:
		f.ETAIterations = -1
	}

	// Frontier trend over the whole window (Pick-Less rounds included: the
	// frontier is orthogonal to the candidate-label restriction).
	xs, ys = xs[:0], ys[:0]
	for _, fr := range w {
		xs = append(xs, float64(fr.Iter))
		ys = append(ys, fr.FrontierOccupancy)
	}
	f.FrontierTrend = slope(xs, ys)

	// Modularity trend over the window's quality-bearing frames; a flat
	// slope on a positive-Q run is the quality-plateau convergence signal.
	if f.HasQuality {
		xs, ys = xs[:0], ys[:0]
		for _, fr := range w {
			if !fr.HasQuality {
				continue
			}
			xs = append(xs, float64(fr.Iter))
			ys = append(ys, fr.Modularity)
		}
		f.QualityTrend = slope(xs, ys)
	}

	// Stall: this iteration versus the median of the preceding window.
	f.DurationFactor = 1
	if len(w) >= 4 {
		prev := make([]float64, 0, len(w)-1)
		for _, fr := range w[:len(w)-1] {
			prev = append(prev, fr.DurationUS)
		}
		if med := medianFloat(prev); med > 0 {
			f.DurationFactor = f.DurationUS / med
			f.StallSuspect = f.DurationFactor >= m.cfg.StallFactor &&
				f.DurationUS >= float64(stallFloor)/float64(time.Microsecond)
		}
	}
}

// verdict is the state machine: most severe condition wins. Caller holds
// m.mu; f already has its derived signals.
func (m *Monitor) verdict(f Frame) State {
	if m.total < 3 {
		return StateWarmup
	}
	windowFull := m.total >= m.cfg.Window
	// Quality collapse: modularity has fallen CollapseDrop below the run's
	// peak. Checked right after stall — the partition is being destroyed
	// even when ΔN alone would read as progress. The peak floor (0.05)
	// keeps noise around Q≈0 warmup values from arming the detector.
	collapse := f.HasQuality && m.havePeakQ && m.peakQ > 0.05 &&
		m.peakQ-f.Modularity >= m.cfg.CollapseDrop
	// Quality plateau: modularity flat across the window on a positive-Q
	// run while flips are near the threshold — confirms convergence even
	// when the ΔN decay fit alone is too noisy to call it.
	plateau := windowFull && f.HasQuality && f.Modularity > 0 &&
		math.Abs(f.QualityTrend) <= m.cfg.PlateauEps &&
		float64(f.DeltaN) <= 4*m.cfg.Threshold
	switch {
	case f.StallSuspect:
		return StateStalled
	case collapse:
		return StateCollapse
	case windowFull && f.OscillationScore >= 0.5 && float64(f.DeltaN) > m.cfg.Threshold:
		return StateOscillating
	case f.Shards > 1 && f.StragglerSkew >= m.cfg.StragglerSkew:
		return StateStraggling
	case f.DecaySlope < -0.05:
		return StateConverging
	case plateau:
		return StateConverging
	default:
		return StateHealthy
	}
}

// RecordEvent annotates the run from outside the iteration stream — the job
// runner records fallback/deadline/fault outcomes here so the flight bundle
// can align them with frames.
func (m *Monitor) RecordEvent(name, detail string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.event(Event{Iter: m.lastIter, Time: time.Now(), Name: name, Detail: detail})
	m.mu.Unlock()
}

// event appends to the bounded annotation track. Caller holds m.mu.
func (m *Monitor) event(e Event) {
	if len(m.events) >= maxEvents {
		copy(m.events, m.events[1:])
		m.events = m.events[:len(m.events)-1]
	}
	m.events = append(m.events, e)
}

// push appends f to the frame ring. Caller holds m.mu.
func (m *Monitor) push(f Frame) {
	if len(m.frames) < m.cfg.RingSize {
		m.frames = append(m.frames, f)
		return
	}
	m.frames[m.start] = f
	m.start = (m.start + 1) % m.cfg.RingSize
}

// lastFrames returns up to n most recent frames, oldest first. Caller holds
// m.mu. The returned slice is freshly allocated.
func (m *Monitor) lastFrames(n int) []Frame {
	total := len(m.frames)
	if n > total {
		n = total
	}
	out := make([]Frame, 0, n+1)
	for i := total - n; i < total; i++ {
		out = append(out, m.frames[(m.start+i)%total])
	}
	return out
}

// Frames returns the retained frame ring, oldest first.
func (m *Monitor) Frames() []Frame {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastFrames(len(m.frames))
}

// Events returns the annotation track in order.
func (m *Monitor) Events() []Event {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// State returns the current verdict.
func (m *Monitor) State() State {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Total returns the number of frames ever observed (the ring retains only
// the last Config.RingSize of them).
func (m *Monitor) Total() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Subscribe registers a live frame consumer. It returns the frames already
// observed (catch-up, oldest first) and a Subscription whose channel carries
// every subsequent frame in order; the channel closes when the run ends
// (Close) or on Subscription.Cancel. The snapshot and registration are
// atomic, so a consumer replaying past then draining the channel sees every
// frame exactly once — except under sustained backpressure, where frames
// drop (counted per subscriber in Subscription.Dropped and globally in
// engine_health_frames_dropped_total) rather than stall the run.
func (m *Monitor) Subscribe() (past []Frame, s *Subscription) {
	if m == nil {
		ch := make(chan Frame)
		close(ch)
		return nil, &Subscription{Frames: ch}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	past = m.lastFrames(len(m.frames))
	sub := &subscriber{ch: make(chan Frame, subBuffer)}
	if m.closed {
		close(sub.ch)
		return past, &Subscription{Frames: sub.ch, sub: sub}
	}
	id := m.nextSub
	m.nextSub++
	m.subs[id] = sub
	return past, &Subscription{Frames: sub.ch, sub: sub, cancel: func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if c, ok := m.subs[id]; ok {
			delete(m.subs, id)
			close(c.ch)
		}
	}}
}

// Close marks the run finished: subscriber channels close and the per-state
// run gauge releases this monitor. Frames and events stay readable for the
// flight recorder. Idempotent.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for id, sub := range m.subs {
		delete(m.subs, id)
		close(sub.ch)
	}
	mStateRuns.With(string(m.state)).Add(-1)
}

// slope is the least-squares slope of ys over xs; 0 with fewer than two
// points or degenerate xs.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

func medianDuration(durs []time.Duration) time.Duration {
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func medianFloat(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
