package health

import (
	"testing"
	"time"

	"nulpa/internal/telemetry"
)

// feed pushes n iteration records through the monitor with the given ΔN
// schedule and a constant duration.
func feed(m *Monitor, deltas []int64, dur time.Duration) {
	for i, d := range deltas {
		m.ObserveIteration(telemetry.IterRecord{
			Iter: i, DeltaN: d, Moves: d, EdgeVisits: 10 * d, ActiveVertices: d,
			Duration: dur,
		})
	}
}

func TestMonitorConvergingAndETA(t *testing.T) {
	m := New(Config{Vertices: 2048, Threshold: 1})
	defer m.Close()
	// Geometric halving: slope ≈ -ln 2, well below the converging cut.
	feed(m, []int64{1024, 512, 256, 128, 64}, 10*time.Millisecond)

	frames := m.Frames()
	last := frames[len(frames)-1]
	if last.State != StateConverging {
		t.Fatalf("state = %s, want %s (slope %.3f)", last.State, StateConverging, last.DecaySlope)
	}
	if last.DecaySlope > -0.5 {
		t.Fatalf("decay slope = %.3f, want ≈ -ln2", last.DecaySlope)
	}
	// ΔN=64 decaying at ln2 per iteration needs ~6 more iterations to reach 1.
	if last.ETAIterations < 3 || last.ETAIterations > 12 {
		t.Fatalf("ETA = %.1f iterations, want ≈ 6", last.ETAIterations)
	}
	if last.FlipRate != 64.0/2048 {
		t.Fatalf("flip rate = %v", last.FlipRate)
	}
	if last.OscillationScore != 0 {
		t.Fatalf("oscillation score = %v on a strictly decaying run", last.OscillationScore)
	}

	// Once ΔN crosses the threshold the ETA collapses to zero.
	m.ObserveIteration(telemetry.IterRecord{Iter: 5, DeltaN: 1, Duration: 10 * time.Millisecond})
	frames = m.Frames()
	if eta := frames[len(frames)-1].ETAIterations; eta != 0 {
		t.Fatalf("ETA below threshold = %v, want 0", eta)
	}
}

func TestMonitorOscillation(t *testing.T) {
	m := New(Config{Vertices: 1000, Window: 8})
	defer m.Close()
	deltas := make([]int64, 10)
	for i := range deltas {
		deltas[i] = 500 // never decays
	}
	feed(m, deltas, 5*time.Millisecond)
	if st := m.State(); st != StateOscillating {
		t.Fatalf("state = %s, want %s", st, StateOscillating)
	}
	frames := m.Frames()
	if sc := frames[len(frames)-1].OscillationScore; sc < 0.99 {
		t.Fatalf("oscillation score = %v, want 1", sc)
	}
	// The transition must be on the event track.
	found := false
	for _, e := range m.Events() {
		if e.Name == "health:"+string(StateOscillating) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no oscillating transition event; events = %+v", m.Events())
	}
}

func TestMonitorPickLessExcluded(t *testing.T) {
	m := New(Config{Vertices: 1000})
	defer m.Close()
	// Pick-Less rounds suppress ΔN by design; interleaved with decaying
	// regular rounds they must not register as oscillation (the rebound
	// after each Pick-Less round is expected, not pathological).
	recs := []telemetry.IterRecord{
		{Iter: 0, DeltaN: 800},
		{Iter: 1, DeltaN: 10, PickLess: true},
		{Iter: 2, DeltaN: 400},
		{Iter: 3, DeltaN: 8, PickLess: true},
		{Iter: 4, DeltaN: 200},
		{Iter: 5, DeltaN: 100},
	}
	for _, r := range recs {
		r.Duration = 5 * time.Millisecond
		m.ObserveIteration(r)
	}
	frames := m.Frames()
	last := frames[len(frames)-1]
	if last.OscillationScore != 0 {
		t.Fatalf("oscillation score = %v with Pick-Less interleaving, want 0", last.OscillationScore)
	}
	if last.DecaySlope >= 0 {
		t.Fatalf("decay slope = %v, want negative", last.DecaySlope)
	}
}

func TestMonitorStallDetection(t *testing.T) {
	m := New(Config{Vertices: 1000, StallFactor: 8})
	defer m.Close()
	feed(m, []int64{100, 90, 80, 70, 60}, 10*time.Millisecond)
	if st := m.State(); st == StateStalled {
		t.Fatalf("stalled on uniform durations")
	}
	// One iteration at 20× the median: the stall detector must fire.
	m.ObserveIteration(telemetry.IterRecord{Iter: 5, DeltaN: 50, Duration: 200 * time.Millisecond})
	frames := m.Frames()
	last := frames[len(frames)-1]
	if !last.StallSuspect {
		t.Fatalf("stall not suspected: factor = %.1f", last.DurationFactor)
	}
	if last.State != StateStalled {
		t.Fatalf("state = %s, want %s", last.State, StateStalled)
	}
}

func TestMonitorSuperstepFold(t *testing.T) {
	m := New(Config{Vertices: 100})
	defer m.Close()
	durs := []time.Duration{2 * time.Millisecond, 30 * time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond}
	m.ObserveSuperstep(0, durs, 84*time.Millisecond, 17)
	m.ObserveIteration(telemetry.IterRecord{Iter: 0, DeltaN: 50, Duration: 32 * time.Millisecond})

	f := m.Frames()[0]
	if f.Shards != 4 {
		t.Fatalf("shards = %d", f.Shards)
	}
	if f.StragglerShard != 1 {
		t.Fatalf("straggler shard = %d, want 1", f.StragglerShard)
	}
	if f.StragglerSkew < 10 {
		t.Fatalf("skew = %v, want 15 (30ms over 2ms median)", f.StragglerSkew)
	}
	if f.BarrierWaitUS != 84000 {
		t.Fatalf("barrier wait = %v µs", f.BarrierWaitUS)
	}
	// Share: 84ms idle over 4 shards × 30ms max = 0.7.
	if f.BarrierWaitShare < 0.69 || f.BarrierWaitShare > 0.71 {
		t.Fatalf("barrier wait share = %v, want 0.7", f.BarrierWaitShare)
	}
	if f.HaloLabels != 17 {
		t.Fatalf("halo labels = %d", f.HaloLabels)
	}

	// A balanced superstep carries no straggler.
	m.ObserveSuperstep(1, []time.Duration{5 * time.Millisecond, 5 * time.Millisecond}, 0, 0)
	m.ObserveIteration(telemetry.IterRecord{Iter: 1, DeltaN: 40, Duration: 5 * time.Millisecond})
	f = m.Frames()[1]
	if f.StragglerShard != -1 {
		t.Fatalf("balanced superstep flagged shard %d", f.StragglerShard)
	}
	// Stale superstep info must not leak into an unrelated iteration.
	m.ObserveIteration(telemetry.IterRecord{Iter: 2, DeltaN: 30, Duration: 5 * time.Millisecond})
	f = m.Frames()[2]
	if f.Shards != 0 || f.HaloLabels != 0 {
		t.Fatalf("superstep info leaked into iteration 2: %+v", f)
	}
}

func TestMonitorRingBounds(t *testing.T) {
	m := New(Config{Vertices: 100, RingSize: 4})
	defer m.Close()
	deltas := make([]int64, 10)
	for i := range deltas {
		deltas[i] = int64(100 - i)
	}
	feed(m, deltas, time.Millisecond)
	if m.Total() != 10 {
		t.Fatalf("total = %d", m.Total())
	}
	frames := m.Frames()
	if len(frames) != 4 {
		t.Fatalf("ring retained %d frames, want 4", len(frames))
	}
	for i, f := range frames {
		if f.Iter != 6+i {
			t.Fatalf("frame %d is iter %d, want %d", i, f.Iter, 6+i)
		}
	}
}

func TestMonitorSubscribe(t *testing.T) {
	m := New(Config{Vertices: 100})
	feed(m, []int64{50, 40}, time.Millisecond)

	past, sub := m.Subscribe()
	defer sub.Cancel()
	ch := sub.Frames
	if len(past) != 2 {
		t.Fatalf("catch-up = %d frames, want 2", len(past))
	}
	m.ObserveIteration(telemetry.IterRecord{Iter: 2, DeltaN: 30, Duration: time.Millisecond})
	select {
	case f := <-ch:
		if f.Iter != 2 {
			t.Fatalf("live frame iter = %d", f.Iter)
		}
	case <-time.After(time.Second):
		t.Fatal("no live frame delivered")
	}
	m.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("unexpected frame after close")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed on Close")
	}

	// Subscribing after close still yields the catch-up frames and a closed
	// channel — a late SSE client sees the whole finished run.
	past, sub2 := m.Subscribe()
	defer sub2.Cancel()
	if len(past) != 3 {
		t.Fatalf("post-close catch-up = %d frames, want 3", len(past))
	}
	if _, ok := <-sub2.Frames; ok {
		t.Fatal("post-close channel not closed")
	}
}

// TestSubscriberLagAccounting: a subscriber that never drains loses frames
// once its buffer fills, and its Dropped counter says exactly how many — the
// per-client signal behind the SSE "lagged" disconnect. A second, draining
// subscriber is unaffected by its sibling's backpressure.
func TestSubscriberLagAccounting(t *testing.T) {
	m := New(Config{Vertices: 10_000})
	defer m.Close()
	_, stalled := m.Subscribe()
	defer stalled.Cancel()
	_, healthy := m.Subscribe()
	defer healthy.Cancel()

	const extra = 10
	for i := 0; i < subBuffer+extra; i++ {
		m.ObserveIteration(telemetry.IterRecord{Iter: i, DeltaN: 5, Duration: time.Microsecond})
		select { // drain the healthy subscriber in lock-step
		case <-healthy.Frames:
		default:
			t.Fatalf("healthy subscriber starved at frame %d", i)
		}
	}
	if got := stalled.Dropped(); got != extra {
		t.Fatalf("stalled subscriber dropped %d frames, want %d", got, extra)
	}
	if got := healthy.Dropped(); got != 0 {
		t.Fatalf("draining subscriber dropped %d frames, want 0", got)
	}
	var nilSub *Subscription
	if nilSub.Dropped() != 0 {
		t.Fatal("nil subscription dropped != 0")
	}
	nilSub.Cancel() // no panic
}

func TestMonitorRetryEvent(t *testing.T) {
	m := New(Config{Vertices: 100})
	defer m.Close()
	m.ObserveIteration(telemetry.IterRecord{Iter: 0, DeltaN: 10, Retries: 2, Duration: time.Millisecond})
	var found bool
	for _, e := range m.Events() {
		if e.Name == "fault:retry" && e.Iter == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no fault:retry event; events = %+v", m.Events())
	}
}

func TestNilMonitorNoOps(t *testing.T) {
	var m *Monitor
	m.ObserveIteration(telemetry.IterRecord{Iter: 0, DeltaN: 1})
	m.ObserveSuperstep(0, []time.Duration{time.Millisecond}, 0, 0)
	m.SetTarget(10, 1)
	m.RecordEvent("x", "y")
	m.Close()
	if m.Frames() != nil || m.Events() != nil || m.Total() != 0 || m.State() != "" {
		t.Fatal("nil monitor leaked state")
	}
	if b := m.Flight("request"); b != nil {
		t.Fatal("nil monitor produced a bundle")
	}
	past, sub := m.Subscribe()
	sub.Cancel()
	if len(past) != 0 {
		t.Fatal("nil monitor catch-up")
	}
	if _, ok := <-sub.Frames; ok {
		t.Fatal("nil monitor channel open")
	}
}

func TestRecorderSinkDispatch(t *testing.T) {
	rec := telemetry.NewRecorder()
	m := New(Config{Vertices: 100})
	defer m.Close()
	rec.SetSink(m)
	rec.RecordIteration(telemetry.IterRecord{Iter: 0, DeltaN: 10, Duration: time.Millisecond})
	rec.RecordSuperstep(1, []time.Duration{time.Millisecond, 5 * time.Millisecond}, 4*time.Millisecond, 3)
	rec.RecordIteration(telemetry.IterRecord{Iter: 1, DeltaN: 8, Duration: time.Millisecond})
	if m.Total() != 2 {
		t.Fatalf("sink observed %d iterations, want 2", m.Total())
	}
	if f := m.Frames()[1]; f.Shards != 2 || f.HaloLabels != 3 {
		t.Fatalf("superstep not folded through recorder: %+v", f)
	}
	// AddIterRecords (the baseline path) must dispatch too.
	rec2 := telemetry.NewRecorder()
	m2 := New(Config{Vertices: 100})
	defer m2.Close()
	rec2.SetSink(m2)
	rec2.AddIterRecords([]telemetry.IterRecord{{Iter: 0, DeltaN: 5, Duration: time.Millisecond}})
	if m2.Total() != 1 {
		t.Fatalf("AddIterRecords did not dispatch")
	}
}
