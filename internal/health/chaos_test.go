package health_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"nulpa/internal/engine"
	_ "nulpa/internal/engine/all"
	"nulpa/internal/faults"
	"nulpa/internal/gen"
	"nulpa/internal/health"
	"nulpa/internal/nulpa"
	"nulpa/internal/simt"
	"nulpa/internal/telemetry"
)

// TestChaosFlightDump is the chaos-suite assertion for the flight recorder:
// every injected-fault run must produce a parseable, schema-valid flight
// dump, and when the run recovered from a kernel fault the dump's frames
// must carry the faulting iteration's work counters and the recorded
// fault:retry event must align with a frame that shows the retries.
func TestChaosFlightDump(t *testing.T) {
	g := gen.Web(gen.DefaultWeb(500, 8, 11))
	sawRetry := false
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			det, err := engine.MustGet("nulpa")
			if err != nil {
				t.Fatal(err)
			}
			rec := telemetry.NewRecorder()
			mon := health.New(health.Config{Detector: "nulpa", Vertices: g.NumVertices()})
			rec.SetSink(mon)

			nopt := nulpa.DefaultOptions()
			nopt.Device = simt.NewDevice(4)
			nopt.Faults = faults.New(faults.Spec{KernelFailRate: 0.05, Seed: seed})
			nopt.RetryBackoff = time.Microsecond
			opt := engine.DefaultOptions()
			opt.Extra = nopt
			opt.Profiler = rec

			res, err := runGuarded(t, func() (*engine.Result, error) { return det.Detect(g, opt) })
			reason := "request"
			switch {
			case err != nil:
				if !typedChaosError(err) {
					t.Fatalf("untyped chaos error: %v", err)
				}
				reason = "fault"
				mon.RecordEvent("fault", err.Error())
			default:
				if nres, ok := res.Extra.(*nulpa.Result); ok && nres.Degraded {
					reason = "degraded"
					mon.RecordEvent("fallback:direct", "simt backend degraded to direct")
				}
			}
			mon.Close()

			// Every faulted run yields a parseable dump.
			b := mon.Flight(reason)
			data, merr := json.Marshal(b)
			if merr != nil {
				t.Fatal(merr)
			}
			parsed, perr := health.DecodeFlight(data)
			if perr != nil {
				t.Fatalf("dump not parseable: %v", perr)
			}
			if verr := parsed.Validate(); verr != nil {
				t.Fatalf("dump invalid: %v", verr)
			}
			if len(parsed.Frames) == 0 {
				t.Fatal("dump has no frames")
			}

			// When recovery fired, the fault event must match a frame
			// carrying that iteration's retries and work counters, with the
			// derived oscillation/straggler fields present.
			for _, e := range parsed.Events {
				if e.Name != "fault:retry" {
					continue
				}
				sawRetry = true
				var frame *health.Frame
				for i := range parsed.Frames {
					if parsed.Frames[i].Iter == e.Iter && parsed.Frames[i].Retries > 0 {
						frame = &parsed.Frames[i]
					}
				}
				if frame == nil {
					t.Fatalf("fault:retry at iter %d has no matching frame with retries; frames: %+v",
						e.Iter, parsed.Frames)
				}
				if frame.EdgeVisits == 0 && frame.Moves == 0 {
					t.Fatalf("faulting iteration %d carries no work counters: %+v", e.Iter, frame)
				}
				if frame.OscillationScore < 0 || frame.OscillationScore > 1 {
					t.Fatalf("oscillation score out of range: %v", frame.OscillationScore)
				}
				if frame.StragglerShard != -1 {
					t.Fatalf("single-device frame names straggler shard %d", frame.StragglerShard)
				}
			}
		})
	}
	if !sawRetry {
		t.Fatal("no seed in 1..12 produced a recovered kernel fault — raise the rate or widen the seed range")
	}
}

// runGuarded and typedChaosError mirror the engine chaos-suite helpers: a
// watchdog turns a hang into a failure, and only typed errors are
// acceptable under fault injection.
func runGuarded(t *testing.T, f func() (*engine.Result, error)) (*engine.Result, error) {
	t.Helper()
	type outcome struct {
		res *engine.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, fmt.Errorf("detector panicked: %v", r)}
			}
		}()
		res, err := f()
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(60 * time.Second):
		t.Fatalf("detector hung past the watchdog")
		return nil, nil
	}
}

func typedChaosError(err error) bool {
	return errors.Is(err, engine.ErrCanceled) || errors.Is(err, engine.ErrDeadline) ||
		errors.Is(err, nulpa.ErrFaulted)
}
