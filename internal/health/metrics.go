package health

import "nulpa/internal/metrics"

// The engine_health_* families: aggregate exposition of the per-run
// monitors. Gauges carry the most recent monitored frame's signals (a
// fleet-level "what is the engine doing right now" view — per-run detail
// lives in the SSE stream and flight bundles); counters and histograms
// accumulate across runs.
var (
	mFrames = metrics.NewCounter("engine_health_frames_total",
		"Health frames derived across all monitored runs.")
	mFramesDropped = metrics.NewCounter("engine_health_frames_dropped_total",
		"Live frames dropped because a subscriber's buffer was full.")
	mTransitions = metrics.NewCounterVec("engine_health_transitions_total",
		"Health-state transitions by entered state (exemplars carry the run's trace id).", "state")
	mStateRuns = metrics.NewGaugeVec("engine_health_state_runs",
		"Currently monitored runs by health state.", "state")
	mFlightDumps = metrics.NewCounterVec("engine_health_flight_dumps_total",
		"Flight-recorder bundles captured, by reason.", "reason")
	mQualityCollapses = metrics.NewCounter("engine_quality_collapses_total",
		"Runs entering the quality-collapse state (exemplars carry the run's trace id).")

	mETA = metrics.NewGauge("engine_health_eta_iterations",
		"Most recent frame's extrapolated iterations to convergence (-1 unknown).")
	mSlope = metrics.NewGauge("engine_health_decay_slope",
		"Most recent frame's ln(deltaN) decay slope per iteration.")
	mOsc = metrics.NewGauge("engine_health_oscillation_score",
		"Most recent frame's oscillation score (fraction of window steps failing to decay).")
	mSkew = metrics.NewGauge("engine_health_straggler_skew",
		"Most recent superstep's max/median shard-time ratio.")
	mOccupancy = metrics.NewGauge("engine_health_frontier_occupancy",
		"Most recent frame's active-vertex share of the graph.")

	// Log-spaced histograms: iteration wall time from ~10µs to ~40s and
	// barrier wait from ~1µs to ~4s — the two latency distributions the
	// straggler and stall detectors summarize.
	mIterSeconds = metrics.NewHistogram("engine_health_iteration_seconds",
		"Monitored iteration wall time.", metrics.ExpBuckets(1e-5, 2, 22))
	mBarrierWait = metrics.NewHistogram("engine_health_barrier_wait_seconds",
		"Monitored superstep barrier wait (idle shard-seconds).", metrics.ExpBuckets(1e-6, 2, 22))
)
