package health

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nulpa/internal/telemetry"
)

func TestFlightCaptureRoundTrip(t *testing.T) {
	m := New(Config{Detector: "nulpa", Vertices: 1000, Threshold: 2})
	defer m.Close()
	feed(m, []int64{400, 200, 100, 50}, 3*time.Millisecond)
	m.RecordEvent("fault", "injected: kernel launch rejected")

	b := m.Flight("fault")
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Reason != "fault" || b.Detector != "nulpa" || b.Vertices != 1000 {
		t.Fatalf("bundle metadata: %+v", b)
	}
	if b.Iterations != 4 || len(b.Frames) != 4 {
		t.Fatalf("bundle frames: %d/%d", len(b.Frames), b.Iterations)
	}
	if len(b.Metrics) == 0 {
		t.Fatal("bundle has no metrics snapshot")
	}
	found := false
	for _, e := range b.Events {
		if e.Name == "fault" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recorded event missing from bundle: %+v", b.Events)
	}

	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeFlight(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Compare re-encoded bytes: time.Time carries a monotonic component
	// that JSON drops, so struct equality would spuriously differ.
	data2, err := json.Marshal(rt)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("bundle did not survive the round trip")
	}
}

func TestFlightDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeFlight([]byte(`{"schema":1,"reason":"fault","state":"healthy","bogus":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestFlightValidateRejects(t *testing.T) {
	now := time.Now()
	cases := map[string]*FlightBundle{
		"nil":            nil,
		"wrong schema":   {Schema: 99, Reason: "fault", State: StateHealthy},
		"no reason":      {Schema: FlightSchema, State: StateHealthy},
		"no state":       {Schema: FlightSchema, Reason: "fault"},
		"frame count":    {Schema: FlightSchema, Reason: "fault", State: StateHealthy, Frames: []Frame{{State: StateHealthy}}},
		"unordered time": {Schema: FlightSchema, Reason: "fault", State: StateHealthy, Iterations: 2, Frames: []Frame{{Iter: 0, Time: now, State: StateHealthy}, {Iter: 1, Time: now.Add(-time.Second), State: StateHealthy}}},
		"frame no state": {Schema: FlightSchema, Reason: "fault", State: StateHealthy, Iterations: 1, Frames: []Frame{{Iter: 0, Time: now}}},
	}
	for name, b := range cases {
		if err := b.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

// TestFlightSchemaGolden pins the bundle layout: renaming or dropping a JSON
// field fails here (and at the health-smoke gate, which runs
// `healthcheck -schema` against the same golden). Additions require updating
// the golden deliberately.
func TestFlightSchemaGolden(t *testing.T) {
	got, err := json.MarshalIndent(Schema(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "flight_schema.golden.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go run ./cmd/healthcheck -schema > %s`)", err, path)
	}
	var g, w SchemaDescriptor
	if err := json.Unmarshal(got, &g); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		t.Fatalf("golden unreadable: %v", err)
	}
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("flight schema drifted from golden:\n got: %s\nwant: %s\nregenerate with `go run ./cmd/healthcheck -schema > %s` if intentional", got, want, path)
	}
}

// TestFlightDuringRun exercises capture on a live monitor (the explicit
// /jobs/{id}/flight path): frames recorded so far appear, reason "request".
func TestFlightDuringRun(t *testing.T) {
	m := New(Config{Vertices: 500})
	defer m.Close()
	m.ObserveIteration(telemetry.IterRecord{Iter: 0, DeltaN: 100, Duration: time.Millisecond})
	b := m.Flight("request")
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Reason != "request" || len(b.Frames) != 1 {
		t.Fatalf("live capture: %+v", b)
	}
}
