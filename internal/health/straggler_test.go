package health_test

import (
	"context"
	"testing"
	"time"

	"nulpa/internal/engine"
	"nulpa/internal/health"
	"nulpa/internal/telemetry"
)

// TestShardLoopStragglerAttribution drives engine.ShardLoop with one
// artificially slow shard and asserts both halves of the accounting
// contract: the barrier wait is the idle time of the fast shards (not the
// slow one), and the health monitor — attached through the recorder's sink,
// exactly as a real run attaches it — flags the slow shard as the straggler.
func TestShardLoopStragglerAttribution(t *testing.T) {
	const (
		shards   = 4
		slow     = 2
		slowNap  = 30 * time.Millisecond
		fastNap  = 1 * time.Millisecond
		maxIters = 5
	)
	rec := telemetry.NewRecorder()
	mon := health.New(health.Config{Vertices: 1000, Window: 4})
	defer mon.Close()
	rec.SetSink(mon)

	var waits []time.Duration
	var allDurs [][]time.Duration
	lr := engine.ShardLoop(engine.ShardLoopConfig{
		LoopConfig: engine.LoopConfig{MaxIterations: maxIters, Threshold: 0, Profiler: rec},
		Shards:     shards,
		OnSuperstep: func(_ int, durs []time.Duration, wait time.Duration, _ int64) {
			waits = append(waits, wait)
			allDurs = append(allDurs, append([]time.Duration(nil), durs...))
		},
	}, func(_ context.Context, iter, s int) engine.IterOutcome {
		if s == slow {
			time.Sleep(slowNap)
		} else {
			time.Sleep(fastNap)
		}
		// Decaying ΔN so the oscillation detector stays quiet and the
		// straggler verdict is what surfaces.
		return engine.IterOutcome{Record: telemetry.IterRecord{
			DeltaN: 256 >> iter, Moves: 256 >> iter, EdgeVisits: 1000,
		}}
	}, func(_ context.Context, _ int) (int64, error) {
		return 1, nil
	})
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	if lr.Iterations != maxIters {
		t.Fatalf("iterations = %d, want %d", lr.Iterations, maxIters)
	}

	// Barrier-wait attribution: Σ(max − dᵢ) counts the fast shards' idle
	// time. Three fast shards each wait ≈ slowNap−fastNap, so the total must
	// exceed 2×(slowNap−fastNap) even under scheduler noise — and can never
	// reach shards×slowNap (the slow shard itself contributes no wait).
	for i, w := range waits {
		min := 2 * (slowNap - fastNap)
		max := time.Duration(shards) * maxDur(allDurs[i])
		if w < min {
			t.Errorf("superstep %d: barrier wait %v, want >= %v (fast shards idle at the barrier)", i, w, min)
		}
		if w >= max {
			t.Errorf("superstep %d: barrier wait %v >= %v — wait attributed to the slow shard too", i, w, max)
		}
	}

	// The monitor must name the slow shard.
	frames := mon.Frames()
	if len(frames) != maxIters {
		t.Fatalf("monitor saw %d frames, want %d", len(frames), maxIters)
	}
	last := frames[len(frames)-1]
	if last.Shards != shards {
		t.Fatalf("frame shards = %d, want %d", last.Shards, shards)
	}
	if last.StragglerShard != slow {
		t.Fatalf("straggler shard = %d, want %d (skew %.2f)", last.StragglerShard, slow, last.StragglerSkew)
	}
	if last.StragglerSkew < 2 {
		t.Fatalf("straggler skew = %.2f, want >= 2 (30ms vs 1ms shards)", last.StragglerSkew)
	}
	if last.BarrierWaitShare <= 0 || last.BarrierWaitShare > 1 {
		t.Fatalf("barrier wait share = %v, want in (0, 1]", last.BarrierWaitShare)
	}
	if last.State != health.StateStraggling {
		t.Fatalf("state = %s, want %s", last.State, health.StateStraggling)
	}
}

func maxDur(durs []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range durs {
		if d > m {
			m = d
		}
	}
	return m
}
