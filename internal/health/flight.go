package health

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"nulpa/internal/metrics"
	"nulpa/internal/telemetry"
	"nulpa/internal/trace"
)

// FlightSchema versions the bundle layout. Bump on any field removal or
// rename; additions are backward compatible.
const FlightSchema = 2

// FlightBundle is the post-mortem flight recording of one run: the last
// RingSize health frames, the event annotation track, a metrics-registry
// snapshot, and the run's recorded spans — everything needed to reconstruct
// why a run faulted, degraded, or blew its deadline after the fact.
type FlightBundle struct {
	// Schema is FlightSchema at capture time.
	Schema int `json:"schema"`
	// Reason the bundle was captured: "fault", "degraded", "deadline",
	// "canceled", or "request".
	Reason string `json:"reason"`
	// Time stamps the capture.
	Time time.Time `json:"time"`
	// Detector, Trace, Vertices and Threshold echo the monitor Config.
	Detector  string  `json:"detector,omitempty"`
	Trace     string  `json:"trace,omitempty"`
	Vertices  int     `json:"vertices,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Iterations is the total frames observed; Frames retains the last
	// ring-full of them.
	Iterations int `json:"iterations"`
	// State is the final health verdict.
	State State `json:"state"`
	// Frames is the retained ring, oldest first.
	Frames []Frame `json:"frames"`
	// Events is the annotation track (state transitions, fault retries,
	// externally recorded outcomes).
	Events []Event `json:"events,omitempty"`
	// Quality is the sampled (exact-recompute) quality-record track, oldest
	// first — present only when the run carried a quality observer
	// (schema 2).
	Quality []telemetry.QualityRecord `json:"quality,omitempty"`
	// Metrics is a flattened registry snapshot at capture time.
	Metrics []metrics.MetricValue `json:"metrics,omitempty"`
	// Spans is the run's recorded span set (resident in the tracer ring at
	// capture), when the monitor knows its trace id.
	Spans []trace.SpanData `json:"spans,omitempty"`
}

// Flight captures the run's flight bundle. reason should be one of the
// FlightBundle.Reason values. Safe during and after Close; nil on a nil
// monitor.
func (m *Monitor) Flight(reason string) *FlightBundle {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	b := &FlightBundle{
		Schema:     FlightSchema,
		Reason:     reason,
		Time:       time.Now(),
		Detector:   m.cfg.Detector,
		Trace:      m.cfg.TraceID,
		Vertices:   m.cfg.Vertices,
		Threshold:  m.cfg.Threshold,
		Iterations: m.total,
		State:      m.state,
		Frames:     m.lastFrames(len(m.frames)),
		Events:     append([]Event(nil), m.events...),
		Quality:    append([]telemetry.QualityRecord(nil), m.qualityTrack...),
	}
	m.mu.Unlock()

	b.Metrics = metrics.Default().Snapshot()
	if id, err := trace.ParseTraceID(b.Trace); err == nil {
		b.Spans = trace.Default().TraceSpans(id)
	}
	mFlightDumps.With(reason).Inc()
	return b
}

// Validate checks a decoded bundle's structural invariants: current schema,
// a capture reason, a coherent state, and frames in iteration order. It is
// what cmd/healthcheck and the chaos suite assert on every dump.
func (b *FlightBundle) Validate() error {
	if b == nil {
		return fmt.Errorf("flight: nil bundle")
	}
	if b.Schema != FlightSchema {
		return fmt.Errorf("flight: schema %d, this build reads %d", b.Schema, FlightSchema)
	}
	if b.Reason == "" {
		return fmt.Errorf("flight: missing capture reason")
	}
	if b.State == "" {
		return fmt.Errorf("flight: missing health state")
	}
	if b.Iterations < len(b.Frames) {
		return fmt.Errorf("flight: %d frames retained but only %d iterations observed", len(b.Frames), b.Iterations)
	}
	// Frames must be time-ordered. Iteration indices may restart within a
	// bundle (a degraded run replays on the fallback backend from iter 0),
	// so wall order, not iter order, is the invariant.
	for i := 1; i < len(b.Frames); i++ {
		if b.Frames[i].Time.Before(b.Frames[i-1].Time) {
			return fmt.Errorf("flight: frames out of time order at index %d", i)
		}
	}
	for i, f := range b.Frames {
		if f.State == "" {
			return fmt.Errorf("flight: frame %d missing state", i)
		}
	}
	return nil
}

// DecodeFlight parses a bundle, rejecting unknown fields so schema drift in
// either direction is caught at the validation gate rather than silently
// ignored.
func DecodeFlight(data []byte) (*FlightBundle, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b FlightBundle
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	return &b, nil
}

// SchemaDescriptor is the machine-checkable statement of the bundle layout
// (the perfdiff golden-schema pattern): JSON field names per object, derived
// from struct tags so the descriptor cannot drift from the encoder. CI's
// health-smoke compares it against testdata/flight_schema.golden.json.
type SchemaDescriptor struct {
	Schema  int      `json:"schema"`
	Bundle  []string `json:"bundle"`
	Frame   []string `json:"frame"`
	Event   []string `json:"event"`
	Quality []string `json:"quality"`
}

// Schema returns this build's flight-bundle schema descriptor.
func Schema() SchemaDescriptor {
	return SchemaDescriptor{
		Schema:  FlightSchema,
		Bundle:  jsonFields(reflect.TypeOf(FlightBundle{})),
		Frame:   jsonFields(reflect.TypeOf(Frame{})),
		Event:   jsonFields(reflect.TypeOf(Event{})),
		Quality: jsonFields(reflect.TypeOf(telemetry.QualityRecord{})),
	}
}

func jsonFields(t reflect.Type) []string {
	var out []string
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name != "" && name != "-" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
