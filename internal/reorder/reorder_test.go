package reorder

import (
	"math/rand"
	"testing"

	"nulpa/internal/flpa"
	"nulpa/internal/gen"
	"nulpa/internal/graph"
	"nulpa/internal/quality"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	g := gen.Cycle(5)
	out, err := Apply(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		ta, _ := g.Neighbors(graph.Vertex(v))
		tb, _ := out.Neighbors(graph.Vertex(v))
		for k := range ta {
			if ta[k] != tb[k] {
				t.Fatal("identity permutation changed the graph")
			}
		}
	}
}

func TestApplyPreservesStructure(t *testing.T) {
	g := gen.Web(gen.DefaultWeb(500, 6, 3))
	labels := must(flpa.Detect(g, flpa.DefaultOptions())).Labels
	p := ByCommunity(labels)
	out, err := Apply(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("reordered graph invalid: %v", err)
	}
	if out.NumArcs() != g.NumArcs() || out.NumVertices() != g.NumVertices() {
		t.Fatal("size changed")
	}
	// Isomorphism spot-check: edges map through the permutation.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		u := graph.Vertex(rng.Intn(g.NumVertices()))
		ts, ws := g.Neighbors(u)
		if len(ts) == 0 {
			continue
		}
		k := rng.Intn(len(ts))
		v := ts[k]
		w, ok := out.EdgeWeight(p.NewID[u], p.NewID[v])
		if !ok || w != ws[k] {
			t.Fatalf("edge (%d,%d) lost or reweighted under permutation", u, v)
		}
	}
	// Total weight preserved.
	if out.TotalWeight() != g.TotalWeight() {
		t.Error("total weight changed")
	}
}

func TestByCommunityGroupsContiguously(t *testing.T) {
	labels := []uint32{5, 2, 5, 2, 9, 9, 2}
	p := ByCommunity(labels)
	// Walk new ids in order; community changes must never revisit one.
	seen := map[uint32]bool{}
	var last uint32 = ^uint32(0)
	for newV := 0; newV < len(labels); newV++ {
		c := labels[p.OldID[newV]]
		if c != last {
			if seen[c] {
				t.Fatalf("community %d split in new ordering", c)
			}
			seen[c] = true
			last = c
		}
	}
}

func TestByDegreeDescending(t *testing.T) {
	g := gen.Web(gen.DefaultWeb(300, 6, 8))
	p := ByDegree(g)
	for newV := 1; newV < g.NumVertices(); newV++ {
		if g.Degree(p.OldID[newV-1]) < g.Degree(p.OldID[newV]) {
			t.Fatal("degree order violated")
		}
	}
}

func TestMapLabelsRoundTrip(t *testing.T) {
	g, truth := gen.Planted(gen.PlantedConfig{N: 200, Communities: 4, DegIn: 10, DegOut: 0.5, Seed: 6})
	p := ByDegree(g)
	rg, err := Apply(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res := must(flpa.Detect(rg, flpa.DefaultOptions()))
	back := MapLabels(res.Labels, p)
	// The partition on original numbering must match the planted structure
	// as well as detection on the original graph does.
	if nmi := quality.NMI(back, truth); nmi < 0.85 {
		t.Errorf("mapped labels NMI = %.3f", nmi)
	}
	// And modularity must be identical computed either way.
	qr := quality.Modularity(rg, res.Labels)
	qo := quality.Modularity(g, back)
	if diff := qr - qo; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("modularity changed across mapping: %v vs %v", qr, qo)
	}
}

func TestGapCostImprovesWithCommunityOrder(t *testing.T) {
	// Scramble a planted graph's ids, then recover locality by community
	// reordering.
	g, truth := gen.Planted(gen.PlantedConfig{N: 600, Communities: 12, DegIn: 10, DegOut: 0.5, Seed: 4})
	rng := rand.New(rand.NewSource(2))
	scramble := Permutation{NewID: make([]graph.Vertex, 600), OldID: make([]graph.Vertex, 600)}
	perm := rng.Perm(600)
	for old, newID := range perm {
		scramble.NewID[old] = graph.Vertex(newID)
		scramble.OldID[newID] = graph.Vertex(old)
	}
	scrambled, err := Apply(g, scramble)
	if err != nil {
		t.Fatal(err)
	}
	// Truth labels in scrambled numbering.
	scrambledTruth := make([]uint32, 600)
	for newV := 0; newV < 600; newV++ {
		scrambledTruth[newV] = truth[scramble.OldID[newV]]
	}
	before := GapCost(scrambled)
	ordered, err := Apply(scrambled, ByCommunity(scrambledTruth))
	if err != nil {
		t.Fatal(err)
	}
	after := GapCost(ordered)
	if after >= before {
		t.Errorf("community reorder did not improve locality: %.1f -> %.1f", before, after)
	}
}

func TestApplySizeMismatch(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := Apply(g, Identity(4)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestGapCostEmpty(t *testing.T) {
	g := gen.MatchedPairs(0)
	if GapCost(g) != 0 {
		t.Error("empty gap cost nonzero")
	}
}

// must unwraps a detector result in tests where no error is expected
// (no context or fault injection is configured on these runs).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
