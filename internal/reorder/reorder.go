// Package reorder renumbers graph vertices to improve memory locality — the
// application of label propagation behind Boldi et al.'s Layered Label
// Propagation (cited in the paper's related work): vertices of one community
// get consecutive identifiers, so the CSR adjacency and label arrays that
// LPA streams over stay cache-resident. The abl-reorder experiment measures
// the effect on ν-LPA itself.
package reorder

import (
	"fmt"
	"sort"

	"nulpa/internal/graph"
)

// Permutation maps old vertex ids to new ones: NewID[v] is v's new
// identifier.
type Permutation struct {
	NewID []graph.Vertex
	OldID []graph.Vertex
}

// Identity returns the identity permutation on n vertices.
func Identity(n int) Permutation {
	p := Permutation{NewID: make([]graph.Vertex, n), OldID: make([]graph.Vertex, n)}
	for i := 0; i < n; i++ {
		p.NewID[i] = graph.Vertex(i)
		p.OldID[i] = graph.Vertex(i)
	}
	return p
}

// ByCommunity builds the LLP-style ordering: vertices sorted by community
// label (communities by ascending minimum member, so the ordering is stable
// and deterministic), members by ascending old id.
func ByCommunity(labels []uint32) Permutation {
	n := len(labels)
	// Order communities by their minimum member id.
	minMember := map[uint32]int{}
	for v := 0; v < n; v++ {
		c := labels[v]
		if m, ok := minMember[c]; !ok || v < m {
			minMember[c] = v
		}
	}
	order := make([]graph.Vertex, n)
	for i := range order {
		order[i] = graph.Vertex(i)
	}
	sort.Slice(order, func(i, j int) bool {
		ci, cj := labels[order[i]], labels[order[j]]
		if ci != cj {
			return minMember[ci] < minMember[cj]
		}
		return order[i] < order[j]
	})
	return fromOrder(order)
}

// ByDegree builds a degree-descending ordering (ties by old id) — the
// standard GPU layout trick that groups the high-degree block-kernel
// vertices together.
func ByDegree(g *graph.CSR) Permutation {
	n := g.NumVertices()
	order := make([]graph.Vertex, n)
	for i := range order {
		order[i] = graph.Vertex(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return fromOrder(order)
}

// fromOrder converts a new-position→old-id order into a Permutation.
func fromOrder(order []graph.Vertex) Permutation {
	n := len(order)
	p := Permutation{NewID: make([]graph.Vertex, n), OldID: order}
	for newID, old := range order {
		p.NewID[old] = graph.Vertex(newID)
	}
	return p
}

// Apply relabels g under p, returning a new CSR whose vertex v corresponds
// to old vertex p.OldID[v].
func Apply(g *graph.CSR, p Permutation) (*graph.CSR, error) {
	n := g.NumVertices()
	if len(p.NewID) != n || len(p.OldID) != n {
		return nil, fmt.Errorf("reorder: permutation size %d/%d for %d vertices", len(p.NewID), len(p.OldID), n)
	}
	offsets := make([]int64, n+1)
	for newV := 0; newV < n; newV++ {
		offsets[newV+1] = offsets[newV] + int64(g.Degree(p.OldID[newV]))
	}
	targets := make([]graph.Vertex, g.NumArcs())
	weights := make([]float32, g.NumArcs())
	for newV := 0; newV < n; newV++ {
		ts, ws := g.Neighbors(p.OldID[newV])
		base := offsets[newV]
		for k, u := range ts {
			targets[base+int64(k)] = p.NewID[u]
			weights[base+int64(k)] = ws[k]
		}
		// Keep adjacency sorted under the new ids.
		sortAdjRange(targets, weights, base, offsets[newV+1])
	}
	return graph.New(offsets, targets, weights), nil
}

// MapLabels translates a label array computed on the reordered graph back
// to the original vertex numbering. Labels that are vertex ids (as in LPA)
// are translated through the permutation too.
func MapLabels(labels []uint32, p Permutation) []uint32 {
	out := make([]uint32, len(labels))
	for newV, l := range labels {
		out[p.OldID[newV]] = uint32(p.OldID[l])
	}
	return out
}

// GapCost measures layout locality: the mean absolute id distance between
// adjacent vertices (the quantity WebGraph-style compression and cache
// behaviour both depend on). Lower is better.
func GapCost(g *graph.CSR) float64 {
	var sum float64
	var cnt int64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		ts, _ := g.Neighbors(graph.Vertex(v))
		for _, u := range ts {
			d := int64(v) - int64(u)
			if d < 0 {
				d = -d
			}
			sum += float64(d)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func sortAdjRange(targets []graph.Vertex, weights []float32, lo, hi int64) {
	for i := lo + 1; i < hi; i++ {
		t, w := targets[i], weights[i]
		j := i
		for j > lo && targets[j-1] > t {
			targets[j], weights[j] = targets[j-1], weights[j-1]
			j--
		}
		targets[j], weights[j] = t, w
	}
}
