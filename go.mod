module nulpa

go 1.22
