// Command healthcheck validates the convergence health plane and is the
// heart of `make health-smoke`. It has three modes:
//
//	healthcheck [-reason R] flight.json
//	    Validate a flight-recorder bundle written by `nulpa -flight-out` or
//	    GET /jobs/{id}/flight: strict decode (unknown fields rejected),
//	    structural invariants (schema version, time-ordered frames, states
//	    present), and optionally assert the capture reason.
//
//	healthcheck -schema
//	    Print this build's flight-bundle schema descriptor as JSON; the
//	    smoke script diffs it against the checked-in golden so a field
//	    rename or removal fails the gate.
//
//	healthcheck -live URL [-frames N] [-timeout D]
//	    Exercise a running `nulpa -serve` instance end to end: wait for
//	    /readyz, submit a job, stream GET /debug/live/{id} (SSE) asserting
//	    at least N frame events and one frame per iteration, then fetch and
//	    validate GET /jobs/{id}/flight.
//
// Exit status 0 when the checks pass, 1 with a diagnostic on stderr.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"nulpa/internal/health"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "healthcheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	schema := flag.Bool("schema", false, "print the flight-bundle schema descriptor and exit")
	reason := flag.String("reason", "", "assert the bundle's capture reason (file mode)")
	live := flag.String("live", "", "base URL of a running nulpa -serve instance to exercise")
	frames := flag.Int("frames", 3, "live mode: minimum SSE frame events required")
	timeout := flag.Duration("timeout", 60*time.Second, "live mode: overall budget")
	flag.Parse()

	switch {
	case *schema:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(health.Schema())
	case *live != "":
		checkLive(strings.TrimRight(*live, "/"), *frames, *timeout)
	default:
		if flag.NArg() != 1 {
			fail("usage: healthcheck [-reason r] flight.json | healthcheck -schema | healthcheck -live URL")
		}
		checkFile(flag.Arg(0), *reason)
	}
}

func checkFile(path, wantReason string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	b, err := health.DecodeFlight(data)
	if err != nil {
		fail("%s: %v", path, err)
	}
	if err := b.Validate(); err != nil {
		fail("%s: %v", path, err)
	}
	if wantReason != "" && b.Reason != wantReason {
		fail("%s: capture reason %q, want %q", path, b.Reason, wantReason)
	}
	fmt.Printf("healthcheck: %s OK — reason=%s state=%s iterations=%d frames=%d events=%d metrics=%d spans=%d\n",
		path, b.Reason, b.State, b.Iterations, len(b.Frames), len(b.Events), len(b.Metrics), len(b.Spans))
}

// checkLive drives a serve instance: readiness, job submission, the SSE
// stream, and the flight endpoint.
func checkLive(base string, minFrames int, budget time.Duration) {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: budget}

	// 1. Liveness is immediate; readiness may lag until routes are up.
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			fail("server at %s never became ready (last err %v)", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// 2. Submit a job big enough to run for several iterations.
	spec := `{"algo":"nulpa","graph":{"gen":"planted","n":30000,"deg":8,"seed":3},"seed":3}`
	resp, err := client.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		fail("submit: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fail("submit: status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID         int    `json:"id"`
		State      string `json:"state"`
		Iterations int    `json:"iterations"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		fail("submit response: %v", err)
	}

	// 3. Stream the live health frames. The subscription replays retained
	// frames first, so connecting after the job finished still sees every
	// frame, then the end event.
	got, end := streamFrames(client, fmt.Sprintf("%s/debug/live/%d", base, st.ID))
	if got < minFrames {
		fail("SSE stream delivered %d frames, want >= %d", got, minFrames)
	}
	if end.Iterations > 0 && got < end.Iterations {
		fail("SSE stream delivered %d frames for %d iterations (want >= 1 per iteration)", got, end.Iterations)
	}
	fmt.Printf("healthcheck: live OK — job %d streamed %d frames over %d iterations (final state %s)\n",
		st.ID, got, end.Iterations, end.State)

	// 4. The flight endpoint must serve a valid bundle for the job.
	resp, err = client.Get(fmt.Sprintf("%s/jobs/%d/flight", base, st.ID))
	if err != nil {
		fail("flight: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("flight: status %d: %s", resp.StatusCode, body)
	}
	b, err := health.DecodeFlight(bytes.TrimSpace(body))
	if err != nil {
		fail("flight: %v", err)
	}
	if err := b.Validate(); err != nil {
		fail("flight: %v", err)
	}
	if len(b.Frames) == 0 {
		fail("flight: bundle has no frames")
	}
	fmt.Printf("healthcheck: flight OK — reason=%s state=%s frames=%d\n", b.Reason, b.State, len(b.Frames))
}

// endStatus is the subset of the job status carried by the SSE end event.
type endStatus struct {
	State      string `json:"state"`
	Iterations int    `json:"iterations"`
}

// streamFrames consumes an SSE stream until its end event (or EOF), counting
// frame events and sanity-decoding each payload.
func streamFrames(client *http.Client, url string) (int, endStatus) {
	resp, err := client.Get(url)
	if err != nil {
		fail("SSE: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("SSE: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		fail("SSE: content type %q", ct)
	}
	var (
		got   int
		end   endStatus
		event string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "frame":
				var f health.Frame
				if err := json.Unmarshal([]byte(data), &f); err != nil {
					fail("SSE frame: %v", err)
				}
				if f.State == "" {
					fail("SSE frame %d has no state", f.Iter)
				}
				got++
			case "end":
				if err := json.Unmarshal([]byte(data), &end); err != nil {
					fail("SSE end: %v", err)
				}
				return got, end
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail("SSE read: %v", err)
	}
	return got, end
}
