// Command nulpa runs community detection on a graph with any algorithm in
// the engine registry and reports runtime, iteration count, community count,
// and modularity. `-algo list` names every registered detector.
//
// The input graph comes either from a file (-graph, format by extension:
// .mtx Matrix Market, .bin binary, otherwise edge list) or from a generator
// (-gen web|social|road|kmer|er|planted with -n/-deg/-seed).
//
// With -serve the command instead starts the monitoring server
// (internal/httpapi): detections run as jobs submitted over HTTP, and
// /metrics exposes the live metrics registry while they run. When -gen or
// -graph is also given, an initial job is submitted at startup.
//
// Examples:
//
//	nulpa -gen web -n 100000 -deg 8
//	nulpa -graph mygraph.mtx -algo louvain
//	nulpa -gen social -n 65536 -algo nulpa -backend direct -pickless 4
//	nulpa -serve :8080
//	nulpa -serve :8080 -gen web -n 1000000 -algo nulpa
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"nulpa/internal/engine"
	_ "nulpa/internal/engine/all"
	"nulpa/internal/faults"
	"nulpa/internal/graph"
	"nulpa/internal/hashtable"
	"nulpa/internal/health"
	"nulpa/internal/httpapi"
	"nulpa/internal/nulpa"
	"nulpa/internal/quality"
	"nulpa/internal/sched"
	"nulpa/internal/simt"
	"nulpa/internal/telemetry"
	"nulpa/internal/trace"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (.mtx, .bin, or edge list)")
		genName   = flag.String("gen", "", "generator: web, social, road, kmer, er, planted")
		n         = flag.Int("n", 100000, "generator vertex count (social: rounded to a power of two)")
		deg       = flag.Int("deg", 8, "generator average degree parameter")
		seed      = flag.Int64("seed", 1, "generator / algorithm seed")
		algo      = flag.String("algo", "nulpa", "registry name of the detector to run, or 'list'")
		backend   = flag.String("backend", "simt", "nulpa backend: simt, direct, or sharded")
		shards    = flag.Int("shards", 0, "nulpa sharded backend: number of devices (>0 selects -backend sharded)")
		pickless  = flag.Int("pickless", -1, "nulpa: apply Pick-Less every N iterations (0 = off, -1 = backend default)")
		crosschk  = flag.Int("crosscheck", 0, "nulpa: apply Cross-Check every N iterations (0 = off)")
		probing   = flag.String("probing", "quadratic-double", "nulpa: linear, quadratic, double, quadratic-double")
		switchDeg = flag.Int("switch", 32, "nulpa: thread/block kernel switch degree")
		f64       = flag.Bool("f64", false, "nulpa: use float64 hashtable values")
		sms       = flag.Int("sms", 0, "nulpa simt backend: simulated SMs (0 = host parallelism)")
		membudget = flag.Int64("membudget", 0, "nulpa simt backend: device memory budget in bytes (0 = unlimited)")
		writeTo   = flag.String("write-labels", "", "write 'vertex label' lines to this file")
		iterTrace = flag.Bool("trace", false, "print per-iteration telemetry as a table")
		profileTo = flag.String("profile", "", "write a Chrome trace-event JSON (load in chrome://tracing) to this file")
		traceOut  = flag.String("trace-out", "", "record a span trace of the run and write it as JSONL to this file")
		logFormat = flag.String("log-format", "text", "log line format on stderr: text or json")
		serveAddr = flag.String("serve", "", "run the monitoring HTTP server on this address (e.g. :8080) instead of a one-shot detection")
		srvWork   = flag.Int("workers", 0, "serve: device-pool worker count (0 = GOMAXPROCS)")
		srvQueue  = flag.Int("queue-depth", 0, "serve: admission queue depth before shedding 429s (0 = default)")
		srvQuota  = flag.Float64("quota", 0, "serve: per-tenant admission rate in jobs/s, keyed on X-Tenant (0 = no quotas)")
		faultSpec = flag.String("faults", "", "nulpa simt backend: inject faults, e.g. 'kernel=0.01,bitflip=0.01,seed=7' (chaos testing)")
		deadline  = flag.Duration("deadline", 0, "abort the one-shot detection after this duration (0 = no deadline)")
		healthOn  = flag.Bool("health", false, "print a convergence-health summary line per iteration")
		qualityOn = flag.Bool("quality", false, "run the live quality plane and print the final census with a live-vs-exact modularity line")
		flightOut = flag.String("flight-out", "", "write the run's flight-recorder bundle (post-mortem JSON) to this file")
	)
	flag.Parse()

	switch *logFormat {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fmt.Fprintf(os.Stderr, "nulpa: bad -log-format %q (text or json)\n", *logFormat)
		os.Exit(2)
	}

	if *serveAddr != "" {
		serve(*serveAddr, *algo, *backend, *graphPath, *genName, *n, *deg, *seed,
			sched.Config{Workers: *srvWork, QueueDepth: *srvQueue, QuotaRate: *srvQuota})
		return
	}

	if *algo == "list" {
		for _, name := range engine.List() {
			fmt.Println(name)
		}
		return
	}

	// The -backend flag (or a -shards count) selects between the three
	// registered ν-LPA detectors.
	if *shards > 0 && *backend == "simt" {
		*backend = "sharded"
	}
	name := *algo
	if name == "nulpa" {
		switch *backend {
		case "direct":
			name = "nulpa-direct"
		case "sharded":
			name = "nulpa-sharded"
		}
	}
	det, err := engine.MustGet(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nulpa: bad -algo %q: %v\n", *algo, err)
		os.Exit(2)
	}

	// -trace and -profile render the same telemetry records, so they can
	// never disagree: the recorder is attached whenever either is on. The
	// health monitor rides the same recorder as its iteration sink.
	var rec *telemetry.Recorder
	if *iterTrace || *profileTo != "" || *healthOn || *flightOut != "" || *qualityOn {
		rec = telemetry.NewRecorder()
	}

	eopt := engine.DefaultOptions()
	eopt.Seed = *seed
	eopt.Profiler = rec
	if *qualityOn {
		eopt.Quality = engine.QualityConfig{Enabled: true}
	}
	runCtx := context.Background()
	if *deadline > 0 {
		ctx, cancel := context.WithTimeout(runCtx, *deadline)
		defer cancel()
		runCtx = ctx
	}
	// -trace-out turns on span tracing for the one-shot run: a "run" root
	// span whose children (detect → iteration → kernel) land in the JSONL
	// export, the same schema /debug/trace serves.
	var runSpan *trace.Span
	if *traceOut != "" {
		trace.Default().SetEnabled(true)
		runCtx, runSpan = trace.Default().Root(runCtx, "run")
		runSpan.SetString("algo", name)
	}
	eopt.Context = runCtx
	if *faultSpec != "" && name != "nulpa" && name != "nulpa-sharded" {
		fmt.Fprintf(os.Stderr, "nulpa: -faults applies only to the nulpa simt and sharded backends\n")
		os.Exit(2)
	}
	if name == "nulpa" || name == "nulpa-direct" || name == "nulpa-sharded" {
		// The ν-LPA-specific flags travel through Extra; every other
		// detector ignores them.
		nopt := nulpa.DefaultOptions()
		if name == "nulpa-sharded" {
			nopt = nulpa.DefaultShardedOptions()
			if *shards > 0 {
				nopt.Shards = *shards
			}
			nopt.Workers = *sms
		}
		if *pickless >= 0 {
			nopt.PickLessEvery = *pickless
		}
		nopt.CrossCheckEvery = *crosschk
		nopt.SwitchDegree = *switchDeg
		if *f64 {
			nopt.ValueKind = hashtable.Float64
		}
		switch *probing {
		case "linear":
			nopt.Probing = hashtable.Linear
		case "quadratic":
			nopt.Probing = hashtable.Quadratic
		case "double":
			nopt.Probing = hashtable.Double
		case "quadratic-double":
			nopt.Probing = hashtable.QuadraticDouble
		default:
			fmt.Fprintf(os.Stderr, "nulpa: bad -probing %q\n", *probing)
			os.Exit(2)
		}
		if name == "nulpa" {
			nopt.Device = simt.NewDevice(*sms)
			nopt.Device.MemBudget = *membudget
		}
		if *faultSpec != "" {
			// On the sharded backend the injector applies to every shard
			// device; per-shard injection is an API-level knob (ShardFaults).
			spec, err := faults.ParseSpec(*faultSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nulpa: bad -faults: %v\n", err)
				os.Exit(2)
			}
			nopt.Faults = faults.New(spec)
			fmt.Printf("faults: %s\n", spec)
		}
		eopt.Extra = nopt
	}

	g, err := loadGraph(*graphPath, *genName, *n, *deg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
		os.Exit(1)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("graph: %s\n", st)

	// -health / -flight-out attach the convergence monitor to the recorder's
	// iteration stream: a terminal summary line per iteration, and a
	// post-mortem flight bundle on exit.
	var mon *health.Monitor
	if *healthOn || *flightOut != "" {
		hcfg := health.Config{
			Detector:  name,
			Vertices:  g.NumVertices(),
			Threshold: eopt.Tolerance * float64(g.NumVertices()),
		}
		if runSpan != nil {
			hcfg.Span = runSpan
			hcfg.TraceID = runSpan.TraceID().String()
		}
		if *healthOn {
			hcfg.OnFrame = printHealthFrame
		}
		mon = health.New(hcfg)
		rec.SetSink(mon)
	}

	res, err := det.Detect(g, eopt)
	if runSpan != nil {
		if err != nil {
			runSpan.SetString("error", err.Error())
		}
		runSpan.End()
		slog.Info("run finished", "algo", name,
			"trace", runSpan.TraceID().String(), "error", err != nil)
	}
	// The trace is written even for a failed run — a deadline abort is
	// exactly the run one wants to inspect span by span.
	if *traceOut != "" {
		if werr := writeTraceOut(*traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s (one span per line)\n", *traceOut)
	}
	// Like the trace, the flight bundle is written even for a failed run —
	// the post-mortem is the whole point of the recorder.
	if mon != nil {
		reason := "request"
		switch {
		case err != nil && errors.Is(err, engine.ErrDeadline):
			reason = "deadline"
		case err != nil && errors.Is(err, engine.ErrCanceled):
			reason = "canceled"
		case err != nil:
			reason = "fault"
		default:
			if nres, ok := res.Extra.(*nulpa.Result); ok && nres.Degraded {
				reason = "degraded"
				mon.RecordEvent("fallback:direct", "simt backend degraded to direct")
			}
		}
		if err != nil {
			mon.RecordEvent(reason, err.Error())
		}
		mon.Close()
		if *flightOut != "" {
			if werr := writeFlightOut(*flightOut, mon, reason); werr != nil {
				fmt.Fprintf(os.Stderr, "nulpa: %v\n", werr)
				os.Exit(1)
			}
			fmt.Printf("flight: wrote %s (reason %s)\n", *flightOut, reason)
		}
	}
	if err != nil {
		if errors.Is(err, engine.ErrDeadline) {
			fmt.Fprintf(os.Stderr, "nulpa: deadline of %v exceeded\n", *deadline)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
		os.Exit(1)
	}
	if nres, ok := res.Extra.(*nulpa.Result); ok {
		if nres.Retries > 0 || nres.Rollbacks > 0 {
			fmt.Printf("faults recovered: %d retries, %d rollbacks\n", nres.Retries, nres.Rollbacks)
		}
		if nres.Degraded {
			fmt.Printf("degraded: simt backend faulted beyond recovery; result computed by the direct backend\n")
		}
		if len(nres.ShardStats) > 0 {
			fmt.Printf("shards: %d  halo labels: %d  cut arcs: %d\n",
				len(nres.ShardStats), nres.HaloLabels, nres.CutArcs)
			for _, ss := range nres.ShardStats {
				fmt.Printf("  shard %d: %d owned, %d ghosts, %s device memory, %d flips, %d communities\n",
					ss.Shard, ss.Owned, ss.Ghosts, fmtBytes(ss.DeviceBytes), ss.Moves, ss.Communities)
			}
		}
	}

	sum := quality.Summarize(g, res.Labels)
	rate := float64(st.NumArcs) / res.Duration.Seconds() / 1e6
	fmt.Printf("algo: %s\n", *algo)
	fmt.Printf("time: %v (%.1fM arcs/s)\n", res.Duration.Round(time.Microsecond), rate)
	fmt.Printf("iterations: %d  converged: %v\n", res.Iterations, res.Converged)
	fmt.Printf("result: %s\n", sum)
	if q := res.Quality; q != nil {
		fmt.Printf("quality: live Q %.6f vs exact %.6f (drift %.2e, max %.2e over %d recomputes)\n",
			q.Estimate, q.Modularity, q.Drift, q.MaxDrift, q.Recomputes)
		fmt.Printf("census: %d communities  giant %.1f%%  singletons %.1f%%  entropy %.3f nats\n",
			q.Communities, 100*q.GiantShare, 100*q.SingletonRate, q.Entropy)
		fmt.Printf("sizes: 1:%d 2-4:%d 5-16:%d 17-64:%d 65-256:%d 257-1024:%d >1024:%d\n",
			q.SizeBuckets[0], q.SizeBuckets[1], q.SizeBuckets[2], q.SizeBuckets[3],
			q.SizeBuckets[4], q.SizeBuckets[5], q.SizeBuckets[6])
		fmt.Printf("churn: %d flips (low-deg %d, mid %d, high %d)",
			q.Flips, q.FlipsLow, q.FlipsMid, q.FlipsHigh)
		if q.ChurnValid {
			fmt.Printf("  snapshot NMI %.4f", q.ChurnNMI)
		}
		fmt.Println()
	}

	if *iterTrace {
		fmt.Print(telemetry.FormatIters(res.Trace))
		if s := rec.Summary(); s != "" {
			fmt.Print(s)
		}
	}
	if *profileTo != "" {
		f, err := os.Create(*profileTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile: wrote %s (load in chrome://tracing)\n", *profileTo)
	}

	if *writeTo != "" {
		f, err := os.Create(*writeTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		for v, c := range res.Labels {
			fmt.Fprintf(f, "%d %d\n", v, c)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
	}
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// printHealthFrame is the -health terminal line: one compact summary per
// iteration, straggler fields appearing only on sharded runs.
func printHealthFrame(f health.Frame) {
	eta := "?"
	if f.ETAIterations >= 0 {
		eta = strconv.Itoa(int(math.Ceil(f.ETAIterations)))
	}
	line := fmt.Sprintf("health iter=%d state=%s deltaN=%d flip=%.4f slope=%+.3f eta=%s frontier=%.3f osc=%.2f",
		f.Iter, f.State, f.DeltaN, f.FlipRate, f.DecaySlope, eta, f.FrontierOccupancy, f.OscillationScore)
	if f.Shards > 1 {
		line += fmt.Sprintf(" shards=%d skew=%.2f waitUs=%.0f", f.Shards, f.StragglerSkew, f.BarrierWaitUS)
		if f.StragglerShard >= 0 {
			line += fmt.Sprintf(" straggler=%d", f.StragglerShard)
		}
	}
	if f.Retries > 0 {
		line += fmt.Sprintf(" retries=%d", f.Retries)
	}
	fmt.Println(line)
}

// writeFlightOut captures and writes the run's flight bundle.
func writeFlightOut(path string, mon *health.Monitor, reason string) error {
	b := mon.Flight(reason)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceOut dumps the default tracer's resident spans as JSONL.
func writeTraceOut(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Default().WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadGraph delegates to the shared GraphSpec so the CLI and the HTTP job
// plane accept exactly the same inputs.
func loadGraph(path, genName string, n, deg int, seed int64) (*graph.CSR, error) {
	spec := httpapi.GraphSpec{Path: path, Gen: genName, N: n, Deg: deg, Seed: seed}
	if path == "" && genName == "" {
		return nil, fmt.Errorf("need -graph or -gen (web, social, road, kmer, er, planted)")
	}
	return spec.Build()
}

// serve runs the monitoring server, optionally submitting an initial job
// built from the one-shot flags.
func serve(addr, algo, backend, graphPath, genName string, n, deg int, seed int64, scfg sched.Config) {
	srv := httpapi.NewServer(httpapi.WithScheduler(scfg))
	if graphPath != "" || genName != "" {
		name := algo
		if name == "nulpa" && backend == "direct" {
			name = "nulpa-direct"
		}
		st, err := srv.Submit(httpapi.JobSpec{
			Algo:  name,
			Graph: httpapi.GraphSpec{Path: graphPath, Gen: genName, N: n, Deg: deg, Seed: seed},
			Seed:  seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: initial job: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("job %d: %s on %s\n", st.ID, st.Algo, st.Graph)
	}
	fmt.Printf("serving on %s (GET /metrics, /healthz, /readyz, /jobs, /debug/live, /debug/trace, /debug/vars, /debug/pprof)\n", addr)
	slog.Info("server listening", "addr", addr)

	// Serve until SIGINT/SIGTERM, then drain: stop accepting connections,
	// cancel in-flight jobs, and give handlers a bounded grace period.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := httpapi.NewHTTPServer(addr, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Println("shutting down")
	slog.Info("server shutting down")
	// Fail readiness first so a load balancer drains traffic, then cancel
	// the in-flight jobs.
	srv.BeginDrain()
	srv.CancelAll()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "nulpa: shutdown: %v\n", err)
		os.Exit(1)
	}
	// Stop the device pool last: the queue is already drained (every queued
	// job was canceled above), so Stop only joins the workers.
	srv.Close()
}
