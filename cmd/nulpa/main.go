// Command nulpa runs community detection on a graph with any algorithm in
// the engine registry and reports runtime, iteration count, community count,
// and modularity. `-algo list` names every registered detector.
//
// The input graph comes either from a file (-graph, format by extension:
// .mtx Matrix Market, .bin binary, otherwise edge list) or from a generator
// (-gen web|social|road|kmer|er|planted with -n/-deg/-seed).
//
// Examples:
//
//	nulpa -gen web -n 100000 -deg 8
//	nulpa -graph mygraph.mtx -algo louvain
//	nulpa -gen social -n 65536 -algo nulpa -backend direct -pickless 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nulpa/internal/engine"
	_ "nulpa/internal/engine/all"
	"nulpa/internal/gen"
	"nulpa/internal/graph"
	"nulpa/internal/hashtable"
	"nulpa/internal/nulpa"
	"nulpa/internal/quality"
	"nulpa/internal/simt"
	"nulpa/internal/telemetry"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (.mtx, .bin, or edge list)")
		genName   = flag.String("gen", "", "generator: web, social, road, kmer, er, planted")
		n         = flag.Int("n", 100000, "generator vertex count (social: rounded to a power of two)")
		deg       = flag.Int("deg", 8, "generator average degree parameter")
		seed      = flag.Int64("seed", 1, "generator / algorithm seed")
		algo      = flag.String("algo", "nulpa", "registry name of the detector to run, or 'list'")
		backend   = flag.String("backend", "simt", "nulpa backend: simt or direct")
		pickless  = flag.Int("pickless", 4, "nulpa: apply Pick-Less every N iterations (0 = off)")
		crosschk  = flag.Int("crosscheck", 0, "nulpa: apply Cross-Check every N iterations (0 = off)")
		probing   = flag.String("probing", "quadratic-double", "nulpa: linear, quadratic, double, quadratic-double")
		switchDeg = flag.Int("switch", 32, "nulpa: thread/block kernel switch degree")
		f64       = flag.Bool("f64", false, "nulpa: use float64 hashtable values")
		sms       = flag.Int("sms", 0, "nulpa simt backend: simulated SMs (0 = host parallelism)")
		membudget = flag.Int64("membudget", 0, "nulpa simt backend: device memory budget in bytes (0 = unlimited)")
		writeTo   = flag.String("write-labels", "", "write 'vertex label' lines to this file")
		trace     = flag.Bool("trace", false, "print per-iteration telemetry as a table")
		profileTo = flag.String("profile", "", "write a Chrome trace-event JSON (load in chrome://tracing) to this file")
	)
	flag.Parse()

	if *algo == "list" {
		for _, name := range engine.List() {
			fmt.Println(name)
		}
		return
	}

	// The -backend flag selects between the two registered ν-LPA detectors.
	name := *algo
	if name == "nulpa" && *backend == "direct" {
		name = "nulpa-direct"
	}
	det, err := engine.MustGet(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nulpa: bad -algo %q: %v\n", *algo, err)
		os.Exit(2)
	}

	// -trace and -profile render the same telemetry records, so they can
	// never disagree: the recorder is attached whenever either is on.
	var rec *telemetry.Recorder
	if *trace || *profileTo != "" {
		rec = telemetry.NewRecorder()
	}

	eopt := engine.DefaultOptions()
	eopt.Seed = *seed
	eopt.Profiler = rec
	if *algo == "nulpa" || *algo == "nulpa-direct" {
		// The ν-LPA-specific flags travel through Extra; every other
		// detector ignores them.
		nopt := nulpa.DefaultOptions()
		nopt.PickLessEvery = *pickless
		nopt.CrossCheckEvery = *crosschk
		nopt.SwitchDegree = *switchDeg
		if *f64 {
			nopt.ValueKind = hashtable.Float64
		}
		switch *probing {
		case "linear":
			nopt.Probing = hashtable.Linear
		case "quadratic":
			nopt.Probing = hashtable.Quadratic
		case "double":
			nopt.Probing = hashtable.Double
		case "quadratic-double":
			nopt.Probing = hashtable.QuadraticDouble
		default:
			fmt.Fprintf(os.Stderr, "nulpa: bad -probing %q\n", *probing)
			os.Exit(2)
		}
		if name == "nulpa" {
			nopt.Device = simt.NewDevice(*sms)
			nopt.Device.MemBudget = *membudget
		}
		eopt.Extra = nopt
	}

	g, err := loadGraph(*graphPath, *genName, *n, *deg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
		os.Exit(1)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("graph: %s\n", st)

	res, err := det.Detect(g, eopt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
		os.Exit(1)
	}

	sum := quality.Summarize(g, res.Labels)
	rate := float64(st.NumArcs) / res.Duration.Seconds() / 1e6
	fmt.Printf("algo: %s\n", *algo)
	fmt.Printf("time: %v (%.1fM arcs/s)\n", res.Duration.Round(time.Microsecond), rate)
	fmt.Printf("iterations: %d  converged: %v\n", res.Iterations, res.Converged)
	fmt.Printf("result: %s\n", sum)

	if *trace {
		fmt.Print(telemetry.FormatIters(res.Trace))
		if s := rec.Summary(); s != "" {
			fmt.Print(s)
		}
	}
	if *profileTo != "" {
		f, err := os.Create(*profileTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile: wrote %s (load in chrome://tracing)\n", *profileTo)
	}

	if *writeTo != "" {
		f, err := os.Create(*writeTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
		for v, c := range res.Labels {
			fmt.Fprintf(f, "%d %d\n", v, c)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nulpa: %v\n", err)
			os.Exit(1)
		}
	}
}

func loadGraph(path, genName string, n, deg int, seed int64) (*graph.CSR, error) {
	if path != "" {
		return graph.ReadFile(path)
	}
	switch genName {
	case "web":
		return gen.Web(gen.DefaultWeb(n, deg, seed)), nil
	case "social":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(gen.DefaultRMAT(scale, deg, seed)), nil
	case "road":
		return gen.Road(gen.DefaultRoad(n, seed)), nil
	case "kmer":
		return gen.KMer(gen.DefaultKMer(n, seed)), nil
	case "er":
		return gen.ErdosRenyi(n, n*deg/2, seed), nil
	case "planted":
		g, _ := gen.Planted(gen.PlantedConfig{N: n, Communities: 16, DegIn: float64(deg), DegOut: 1, Seed: seed})
		return g, nil
	case "":
		return nil, fmt.Errorf("need -graph or -gen (web, social, road, kmer, er, planted)")
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}
