// Command perfdiff attributes a performance change: it takes two captures
// and reports, per kernel and per counter, what moved between them —
// turning "the gate failed at 1.8×" into "thread kernel hash probes grew
// 2.3× on the web graph".
//
// A capture is any of:
//
//   - a bench report (`bench -experiment perf -json BENCH.json`)
//   - a bench history file (`bench` appends every run to BENCH_<host>.json);
//     pick entries with -a/-b, negative counts from the end
//   - a /debug/perf metrics snapshot (`curl :6060/debug/perf`)
//
// Usage:
//
//	perfdiff OLD.json NEW.json               # markdown table, top offender last
//	perfdiff BENCH_host.json                 # diff the last two history entries
//	perfdiff -a -5 -b -1 BENCH_host.json     # diff entry -5 against the latest
//	perfdiff -json diff.json OLD.json NEW.json
//	perfdiff -chrome trace.json OLD.json NEW.json   # counter tracks for Perfetto
//	perfdiff -check OLD.json NEW.json        # exit 1 when anything regressed
//	perfdiff -schema                         # print the report JSON schema
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nulpa/internal/perfdiff"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 1.5, "regression ratio above which a cell is flagged (current/base)")
		entryA    = flag.Int("a", -1, "history entry for the base capture (negative = from the end)")
		entryB    = flag.Int("b", -1, "history entry for the current capture (negative = from the end)")
		jsonOut   = flag.String("json", "", "write the full report as JSON to this file (\"-\" = stdout)")
		chromeOut = flag.String("chrome", "", "write Chrome trace-event counter tracks to this file")
		rows      = flag.Int("rows", 24, "max table rows to print (0 = all)")
		check     = flag.Bool("check", false, "exit 1 when any cell regressed beyond -threshold")
		schema    = flag.Bool("schema", false, "print the report JSON schema descriptor and exit")
	)
	flag.Parse()

	if *schema {
		out, err := json.MarshalIndent(perfdiff.Schema(), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	var basePath, curPath string
	switch flag.NArg() {
	case 1:
		// One history file: diff its two most recent entries unless the
		// caller picked specific ones.
		basePath, curPath = flag.Arg(0), flag.Arg(0)
		if *entryA == -1 && *entryB == -1 {
			*entryA = -2
		}
	case 2:
		basePath, curPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: perfdiff [flags] BASE [CURRENT]  (see -h)")
		os.Exit(2)
	}

	base, baseDesc, err := perfdiff.LoadCapture(basePath, *entryA)
	if err != nil {
		fatal(err)
	}
	cur, curDesc, err := perfdiff.LoadCapture(curPath, *entryB)
	if err != nil {
		fatal(err)
	}

	rep := perfdiff.Compare(base, cur, *threshold)

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "-" {
		fmt.Printf("base:    %s\ncurrent: %s\n\n", baseDesc, curDesc)
		rep.WriteTable(os.Stdout, *rows)
	}

	if *check && rep.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "perfdiff: %d cell(s) regressed beyond %.2f×\n", rep.Regressions, *threshold)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
	os.Exit(1)
}
