// Command bench regenerates the paper's tables and figures on the synthetic
// dataset stand-ins and prints them as markdown.
//
// Usage:
//
//	bench -experiment all -scale medium -reps 3 -o EXPERIMENTS.md
//	bench -experiment fig-compare -scale small -graphs asia_osm,com-Orkut -v
//
// The regression gate compares the current run's perf medians against a
// previously saved JSON report:
//
//	bench -experiment perf -reps 5 -json BENCH_BASE.json     # capture baseline
//	bench -experiment perf -reps 5 -baseline BENCH_BASE.json # report ratios
//	bench -experiment perf -reps 5 -baseline BENCH_BASE.json -check  # fail > threshold
//
// Every run is also appended to a per-host history file (default
// BENCH_<hostname>.json, disable with -history "") so results accumulate
// across runs instead of being lost; `perfdiff` can diff any two entries.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nulpa/internal/bench"
	"nulpa/internal/perfdiff"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment id or 'all': "+strings.Join(bench.ExperimentIDs(), ", "))
		scaleStr    = flag.String("scale", "small", "dataset scale: small, medium, large")
		reps        = flag.Int("reps", 1, "timing repetitions per cell (minimum kept)")
		sms         = flag.Int("sms", 0, "simulated streaming multiprocessors (0 = host parallelism)")
		graphs      = flag.String("graphs", "", "comma-separated dataset names (default: all of Table 1)")
		out         = flag.String("o", "", "write markdown to this file instead of stdout")
		jsonOut     = flag.String("json", "", "also write all tables (with per-iteration series) as JSON to this file")
		verbose     = flag.Bool("v", false, "print per-cell progress to stderr")
		baseline    = flag.String("baseline", "", "compare this run's perf medians against a saved JSON report")
		check       = flag.Bool("check", false, "exit 1 when any baseline comparison exceeds -threshold")
		threshold   = flag.Float64("threshold", 1.5, "regression ratio above which -check fails (current/baseline)")
		qualityDrop = flag.Float64("quality-drop", 0.05, "modularity floor: -check fails when a cell's final Q falls this far below baseline")
		driftMax    = flag.Float64("drift-max", 1e-6, "estimator-drift gate: -check fails when live-vs-exact modularity drift exceeds this")
		history     = flag.String("history", bench.DefaultHistoryPath(), "append this run to a bench history file (\"\" disables)")
	)
	flag.Parse()

	scale, ok := bench.ParseScale(*scaleStr)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: bad -scale %q\n", *scaleStr)
		os.Exit(2)
	}
	cfg := bench.Config{Scale: scale, Reps: *reps, SMs: *sms}
	if *graphs != "" {
		cfg.Graphs = strings.Split(*graphs, ",")
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}

	ids := bench.ExperimentIDs()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(w, "# ν-LPA experiment results\n\nscale=%s reps=%d date=%s\n\n",
		scale, *reps, time.Now().Format("2006-01-02"))
	var all []bench.Table
	for _, id := range ids {
		start := time.Now()
		tables, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		for _, t := range tables {
			fmt.Fprint(w, t.Markdown())
		}
		all = append(all, tables...)
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, scale, *reps, all); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	report := bench.Report{Scale: scale.String(), Reps: *reps, Tables: all}

	if *history != "" {
		entry := bench.NewHistoryEntry(*experiment, *sms, cfg.Graphs, report)
		n, err := bench.AppendHistory(*history, entry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: history: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "history: appended entry %d to %s\n", n, *history)
	}

	if *baseline != "" {
		base, err := bench.ReadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		cs := bench.CompareReports(base, report)
		regressed := bench.WriteComparison(w, cs, *threshold)
		qcs := bench.CompareQuality(base, report)
		qualityFailed := bench.WriteQualityGate(w, qcs, *qualityDrop, *driftMax)
		if *check && qualityFailed > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d cell(s) failed the quality gate\n", qualityFailed)
			if line := bench.QualityOffender(qcs, *qualityDrop, *driftMax); line != "" {
				fmt.Fprintf(os.Stderr, "bench: %s\n", line)
			}
			os.Exit(1)
		}
		if *check && regressed > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d cell(s) regressed beyond %.2f× of baseline\n", regressed, *threshold)
			// Attribute the failure: diff every series (timings and work
			// counters) so the gate names the kernel/counter that moved, not
			// just the wall-clock cell.
			diff := perfdiff.Compare(base, report, *threshold)
			if line := diff.TopOffender(); line != "" {
				fmt.Fprintf(os.Stderr, "bench: %s\n", line)
			}
			fmt.Fprintln(os.Stderr, "bench: run `perfdiff <baseline> <current>` on the JSON captures for the full attribution table")
			os.Exit(1)
		}
	}
}
