// Command tracecheck validates a JSONL span export (the -trace-out format,
// one trace.SpanData object per line) and is the heart of `make trace-smoke`:
// it fails unless the file is schema-clean and contains at least one fully
// connected trace — a parentless root span with a detect descendant, an
// iteration descendant, and a kernel-launch descendant, each reachable from
// the root through recorded parent links.
//
// Usage:
//
//	tracecheck [-root run] spans.jsonl
//
// Exit status 0 when the file passes, 1 with a diagnostic on stderr when it
// does not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nulpa/internal/trace"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	rootName := flag.String("root", "run", "required name of the trace's root span")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: tracecheck [-root name] spans.jsonl")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	var spans []trace.SpanData
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var d trace.SpanData
		dec := json.NewDecoder(strings.NewReader(sc.Text()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&d); err != nil {
			fail("line %d: not a span object: %v", line, err)
		}
		// Schema: ids are 16 hex digits, the name is present, the start is a
		// real instant, and the duration is non-negative.
		if _, err := trace.ParseTraceID(d.Trace); err != nil {
			fail("line %d: bad trace id %q", line, d.Trace)
		}
		if len(d.Span) != 16 {
			fail("line %d: bad span id %q", line, d.Span)
		}
		if d.Parent != "" && len(d.Parent) != 16 {
			fail("line %d: bad parent id %q", line, d.Parent)
		}
		if d.Name == "" {
			fail("line %d: span has no name", line)
		}
		if d.Start.IsZero() {
			fail("line %d: span has no start time", line)
		}
		if d.DurationUS < 0 {
			fail("line %d: negative duration %g", line, d.DurationUS)
		}
		for _, ev := range d.Events {
			if ev.Name == "" {
				fail("line %d: event has no name", line)
			}
		}
		spans = append(spans, d)
	}
	if err := sc.Err(); err != nil {
		fail("%v", err)
	}
	if len(spans) == 0 {
		fail("%s: no spans", flag.Arg(0))
	}

	// Connectivity: some trace must link root → detect → iteration → kernel
	// through parent ids. BuildTree treats orphans as extra roots, so a
	// broken parent link shows up as the chain not resolving.
	byTrace := map[string][]trace.SpanData{}
	for _, d := range spans {
		byTrace[d.Trace] = append(byTrace[d.Trace], d)
	}
	for id, ts := range byTrace {
		for _, root := range trace.BuildTree(ts) {
			if root.Name != *rootName || root.Parent != "" {
				continue
			}
			detect := find(root.Children, func(n string) bool { return n == "detect" })
			if detect == nil {
				continue
			}
			iter := find(detect.Children, func(n string) bool { return n == "iteration" })
			if iter == nil {
				continue
			}
			if find(iter.Children, func(n string) bool { return strings.HasPrefix(n, "kernel:") }) == nil {
				continue
			}
			fmt.Printf("tracecheck: ok — %d spans, trace %s connects %s → detect → iteration → kernel\n",
				len(spans), id, *rootName)
			return
		}
	}
	fail("%s: %d schema-clean spans, but no trace connects %s → detect → iteration → kernel",
		flag.Arg(0), len(spans), *rootName)
}

// find walks nodes depth-first for a span whose name satisfies match.
func find(nodes []*trace.Node, match func(string) bool) *trace.Node {
	for _, n := range nodes {
		if match(n.Name) {
			return n
		}
		if hit := find(n.Children, match); hit != nil {
			return hit
		}
	}
	return nil
}
