// Command loadgen drives the nulpa serving plane with open-loop load and
// reports latency percentiles, shed/goodput accounting, and a lost-job
// crosscheck against the server's own /debug/vars ledger.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -rate 100 -jobs 500 \
//	        -algo flpa -n 2000 -deg 8 -priorities high,normal,low -tenants 4
//
// The summary prints to stderr; -json writes the full machine-readable
// report, and -history appends it to the shared bench trajectory file so
// perfdiff can compare load runs across commits. Exit status is nonzero
// when the run is unhealthy (lost jobs, transport errors, malformed sheds,
// or an unbalanced server ledger), which is what scripts/load_smoke.sh
// gates on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nulpa/internal/loadgen"
)

func main() {
	var (
		url        = flag.String("url", "http://127.0.0.1:8080", "serving plane base URL")
		rate       = flag.Float64("rate", 100, "open-loop arrival rate, submissions/s")
		jobs       = flag.Int("jobs", 200, "total submissions to fire")
		algo       = flag.String("algo", "flpa", "detector algo for submitted jobs")
		gen        = flag.String("gen", "er", "graph generator (er|ba|planted)")
		n          = flag.Int("n", 1000, "graph vertex count")
		deg        = flag.Int("deg", 8, "graph average degree")
		workers    = flag.Int("job-workers", 0, "per-job detector parallelism (0 = server default)")
		priorities = flag.String("priorities", "high,normal,low", "comma-separated priority mix cycled across submissions")
		tenants    = flag.Int("tenants", 1, "distinct X-Tenant values cycled across submissions")
		deadline   = flag.Int64("deadline-ms", 0, "per-job admission deadline budget, ms (0 = none)")
		faultsSpec = flag.String("faults", "", "fault-injection spec attached to every job (chaos under load)")
		identical  = flag.Bool("identical", false, "submit identical specs (exercises coalescing/cache)")
		timeout    = flag.Duration("job-timeout", 60*time.Second, "per-job terminal-state timeout")
		seed       = flag.Int64("seed", 1, "seed for arrival jitter and graph seeds")
		jsonPath   = flag.String("json", "", "write full JSON report to this file (- for stdout)")
		histPath   = flag.String("history", "", "append the run to this bench history file")
		quiet      = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	cfg := loadgen.Config{
		URL:        strings.TrimRight(*url, "/"),
		Rate:       *rate,
		Jobs:       *jobs,
		Algo:       *algo,
		Gen:        *gen,
		N:          *n,
		Deg:        *deg,
		Workers:    *workers,
		Tenants:    *tenants,
		DeadlineMS: *deadline,
		Faults:     *faultsSpec,
		Identical:  *identical,
		JobTimeout: *timeout,
		Seed:       *seed,
	}
	if p := strings.TrimSpace(*priorities); p != "" {
		cfg.Priorities = strings.Split(p, ",")
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	r.Summary(os.Stderr)

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write report: %v\n", err)
			os.Exit(2)
		}
	}
	if *histPath != "" {
		if n, err := r.AppendBenchHistory(*histPath); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: append history: %v\n", err)
			os.Exit(2)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "loadgen: bench history %s now has %d entries\n", *histPath, n)
		}
	}
	if !r.Healthy() {
		fmt.Fprintf(os.Stderr, "loadgen: UNHEALTHY run (lost=%d errors=%d badSheds=%d balanced=%v)\n",
			r.Lost, r.Errors, r.ShedMissingRetryAfter, r.MetricsBalanced)
		os.Exit(1)
	}
}
