// Command graphgen generates synthetic graphs from the paper's dataset
// classes and writes them to disk (format by extension: .mtx Matrix Market,
// .bin binary, otherwise edge list).
//
// Example:
//
//	graphgen -type road -n 1000000 -seed 7 -o asia_osm_like.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"nulpa/internal/gen"
	"nulpa/internal/graph"
)

func main() {
	var (
		typ  = flag.String("type", "web", "graph class: web, social, road, kmer, er, planted, rgg")
		n    = flag.Int("n", 100000, "vertex count (social: rounded up to a power of two)")
		deg  = flag.Int("deg", 8, "average degree parameter")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o is required")
		os.Exit(2)
	}

	var g *graph.CSR
	switch *typ {
	case "web":
		g = gen.Web(gen.DefaultWeb(*n, *deg, *seed))
	case "social":
		scale := 0
		for 1<<scale < *n {
			scale++
		}
		g = gen.RMAT(gen.DefaultRMAT(scale, *deg, *seed))
	case "road":
		g = gen.Road(gen.DefaultRoad(*n, *seed))
	case "kmer":
		g = gen.KMer(gen.DefaultKMer(*n, *seed))
	case "er":
		g = gen.ErdosRenyi(*n, *n**deg/2, *seed)
	case "planted":
		g, _ = gen.Planted(gen.PlantedConfig{N: *n, Communities: 16, DegIn: float64(*deg), DegOut: 1, Seed: *seed})
	case "rgg":
		g = gen.RGG(*n, 0.05, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown -type %q\n", *typ)
		os.Exit(2)
	}

	var err error
	switch {
	case hasSuffix(*out, ".mtx"):
		f, ferr := os.Create(*out)
		if ferr != nil {
			err = ferr
			break
		}
		err = graph.WriteMatrixMarket(f, g)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	case hasSuffix(*out, ".bin"), hasSuffix(*out, ".nlpg"):
		err = graph.WriteBinaryFile(*out, g)
	case hasSuffix(*out, ".graph"), hasSuffix(*out, ".metis"):
		f, ferr := os.Create(*out)
		if ferr != nil {
			err = ferr
			break
		}
		err = graph.WriteMETIS(f, g)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	default:
		err = graph.WriteEdgeListFile(*out, g)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("wrote %s: %s\n", *out, st)
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
