#!/bin/sh
# perfdiff_smoke.sh — end-to-end check of the work-accounting and perf
# attribution pipeline: run the perf experiment twice on a small fixture
# (both runs appending to one bench history file), diff the two history
# entries with cmd/perfdiff, and validate the outputs:
#
#   - the markdown report names a top offender (kernel/counter pair);
#   - the JSON report matches the golden schema descriptor and carries
#     cells for edge visits, label flips, hash probes, and frontier
#     occupancy — the counters the attribution contract promises;
#   - the Chrome trace export is well-formed counter events.
set -eu

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
hist="$out/BENCH_smoke.json"

echo "perfdiff-smoke: capturing two bench runs into one history file"
for i in 1 2; do
    go run ./cmd/bench -experiment perf -scale small -reps 1 \
        -graphs webbase-2001 -history "$hist" -o /dev/null
done

if ! grep -q '"entries"' "$hist"; then
    echo "perfdiff-smoke: FAIL — history file has no entries envelope" >&2
    exit 1
fi

echo "perfdiff-smoke: diffing the two history entries"
go run ./cmd/perfdiff -json "$out/diff.json" -chrome "$out/diff.chrome.json" \
    "$hist" > "$out/diff.md"

grep -q 'top offender:' "$out/diff.md" || {
    echo "perfdiff-smoke: FAIL — report names no top offender" >&2
    cat "$out/diff.md" >&2
    exit 1
}

echo "perfdiff-smoke: checking attribution coverage"
for series in work-edge_visits work-label_flips work-hash_probes \
    work-frontier_occupancy kernelwork-edge_visits kernel-ms median-ms; do
    grep -q "\"$series\"" "$out/diff.json" || {
        echo "perfdiff-smoke: FAIL — JSON report has no $series cell" >&2
        exit 1
    }
done

echo "perfdiff-smoke: validating report schema against the golden descriptor"
go run ./cmd/perfdiff -schema > "$out/schema.json"
diff -u internal/perfdiff/testdata/schema.golden.json "$out/schema.json" || {
    echo "perfdiff-smoke: FAIL — report schema drifted from testdata/schema.golden.json" >&2
    echo "perfdiff-smoke: regenerate deliberately with: go run ./cmd/perfdiff -schema > internal/perfdiff/testdata/schema.golden.json" >&2
    exit 1
}

grep -q '"traceEvents"' "$out/diff.chrome.json" || {
    echo "perfdiff-smoke: FAIL — Chrome export has no traceEvents" >&2
    exit 1
}

echo "perfdiff-smoke: ok"
