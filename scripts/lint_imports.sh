#!/bin/sh
# lint_imports.sh — enforce the engine's import layering (DESIGN.md):
#
#   1. Algorithm packages (flpa, gunrock, gvelpa, louvain, nulpa, plp,
#      variants) must not import each other. They meet only through the
#      engine registry.
#   2. Every other package may import at most nulpa/internal/nulpa among the
#      algorithm packages (bench and cmd/nulpa need its Options type for the
#      paper's parameter sweeps); the rest are reached via the registry.
#   3. nulpa/internal/sched schedules opaque closures; among nulpa packages
#      it may import only metrics and trace, never graphs/engines/HTTP.
#      nulpa/internal/quality evaluates partitions; among nulpa packages it
#      may import only graph, keeping it usable from every layer.
#   4. Exemptions, each for a reason the registry cannot express:
#      nulpa/internal/engine/all exists to blank-import every algorithm so a
#      registry consumer pulls them all in with one import, and
#      nulpa/examples/overlap type-asserts Result.Extra to the native
#      variants.SLPAResult for the overlapping-membership API.
#
# Only production imports are checked (test files may import anything — the
# conformance suite deliberately pulls in engine/all).
set -eu

cd "$(dirname "$0")/.."

go list -f '{{.ImportPath}}: {{join .Imports " "}}' ./... | awk '
BEGIN {
    n = split("nulpa/internal/flpa nulpa/internal/gunrock nulpa/internal/gvelpa nulpa/internal/louvain nulpa/internal/nulpa nulpa/internal/plp nulpa/internal/variants", a, " ")
    for (i = 1; i <= n; i++) algo[a[i]] = 1
}
{
    pkg = $1
    sub(/:$/, "", pkg)
    if (pkg == "nulpa/internal/engine/all") next
    if (pkg == "nulpa/examples/overlap") next
    for (i = 2; i <= NF; i++) {
        imp = $i
        # perfdiff sits above bench (it loads bench reports); the reverse
        # import would cycle the attribution layer into the capture layer.
        # Only cmd/bench and cmd/perfdiff may consume it.
        if (imp == "nulpa/internal/perfdiff" && pkg != "nulpa/cmd/bench" && pkg != "nulpa/cmd/perfdiff") {
            print pkg " imports nulpa/internal/perfdiff (only cmd/bench and cmd/perfdiff may; perfdiff is the top of the capture stack)"
            bad = 1
        }
        # quality is a pure evaluation layer: modularity, census, and
        # agreement metrics over a graph and labels. Among nulpa packages it
        # may import only graph — never engine, telemetry, or detectors, so
        # every layer (including telemetry itself) can depend on it without
        # cycles.
        if (pkg == "nulpa/internal/quality" && imp ~ /^nulpa\// && imp != "nulpa/internal/graph") {
            print pkg " imports " imp " (quality may import only graph among nulpa packages)"
            bad = 1
        }
        # sched is a generic serving primitive: it schedules opaque closures
        # and must stay ignorant of graphs, engines, and HTTP. Among internal
        # packages it may import only metrics and trace (observability).
        if (pkg == "nulpa/internal/sched" && imp ~ /^nulpa\// && imp != "nulpa/internal/metrics" && imp != "nulpa/internal/trace") {
            print pkg " imports " imp " (sched may import only metrics and trace among nulpa packages)"
            bad = 1
        }
        if (!(imp in algo)) continue
        if (pkg in algo) {
            print pkg " imports sibling algorithm package " imp " (use the engine registry)"
            bad = 1
        } else if (imp != "nulpa/internal/nulpa") {
            print pkg " imports algorithm package " imp " directly (use the engine registry; only nulpa/internal/nulpa is allowed, for its Options type)"
            bad = 1
        }
    }
}
END { exit bad }
'
echo "lint_imports: import layering OK"
