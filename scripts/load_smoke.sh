#!/bin/sh
# load_smoke.sh — end-to-end overload check of the serving plane: start a
# deliberately tiny device pool (2 workers, short queue, per-tenant quota),
# fire an open-loop storm at it with cmd/loadgen, and gate on the report:
# zero lost jobs, zero transport errors, every shed carries Retry-After, the
# server's own /debug/vars ledger balances, and sheds actually happened (a
# storm that never sheds is not testing admission control). A second quick
# run with fault injection checks the chaos path end to end.
set -eu

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$out"
}
trap cleanup EXIT

echo "load-smoke: building nulpa + loadgen"
go build -o "$out/nulpa" ./cmd/nulpa
go build -o "$out/loadgen" ./cmd/loadgen

addr="127.0.0.1:17894"
echo "load-smoke: serving on $addr with -workers 2 -queue-depth 8 -quota 200"
"$out/nulpa" -serve "$addr" -workers 2 -queue-depth 8 -quota 200 \
    > "$out/serve.out" 2>&1 &
srv_pid=$!

# Wait for readiness.
i=0
until "$out/loadgen" -url "http://$addr" -jobs 1 -rate 1 -n 64 -q 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "load-smoke: FAIL — server never became ready" >&2
        cat "$out/serve.out" >&2
        exit 1
    fi
    sleep 0.1
done

echo "load-smoke: overload storm (400/s, 120 jobs, 3 tenants, mixed priorities)"
"$out/loadgen" -url "http://$addr" -rate 400 -jobs 120 \
    -algo flpa -gen er -n 4000 -deg 8 -tenants 3 \
    -priorities high,normal,low -seed 11 \
    -json "$out/report.json" -history "$out/BENCH_load.json" || {
    echo "load-smoke: FAIL — unhealthy overload run" >&2
    cat "$out/report.json" >&2 2>/dev/null || true
    cat "$out/serve.out" >&2
    exit 1
}

# The storm must actually have shed: 400/s against a 2-worker pool with an
# 8-deep queue cannot admit everything. grep -c exits 1 on zero matches, so
# read the counters from the JSON report instead.
sheds=$(sed -n 's/^  "shed4[0-9][0-9]": \([0-9]*\),*$/\1/p' "$out/report.json" | awk '{s+=$1} END {print s+0}')
if [ "$sheds" -eq 0 ]; then
    echo "load-smoke: FAIL — overload storm shed nothing (report below)" >&2
    cat "$out/report.json" >&2
    exit 1
fi
echo "load-smoke: storm shed $sheds submissions, ledger balanced"

echo "load-smoke: chaos run (fault-injected nulpa under load)"
"$out/loadgen" -url "http://$addr" -rate 50 -jobs 12 \
    -algo nulpa -gen planted -n 300 -deg 8 -job-workers 2 \
    -faults 'kernel=0.05,bitflip=0.02,seed=7' -seed 23 -q || {
    echo "load-smoke: FAIL — unhealthy chaos run" >&2
    cat "$out/serve.out" >&2
    exit 1
}

# The bench-history append must have produced a readable trajectory entry.
grep -q '"experiment": "loadgen"' "$out/BENCH_load.json" || {
    echo "load-smoke: FAIL — bench history entry missing" >&2
    cat "$out/BENCH_load.json" >&2
    exit 1
}

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=""

echo "load-smoke: ok"
