#!/bin/sh
# quality_smoke.sh — end-to-end check of the quality telemetry plane: a
# one-shot run on a planted-partition graph with -quality must print the
# live-vs-exact modularity line with estimator drift inside the 1e-6 budget
# and a modularity above the planted floor; a live -serve instance must run
# a quality-enabled job, report the final summary on the job status, and
# expose engine_quality_run_modularity on /metrics within tolerance of it.
set -eu

cd "$(dirname "$0")/.."

# The planted graph's ground-truth structure is strong (deg_in 8 vs deg_out
# ~1 per foreign community); any LPA-family detector should land well above
# this floor. The drift budget matches the acceptance criterion for the
# incremental estimator.
Q_FLOOR=0.3
DRIFT_MAX=1e-6

out="$(mktemp -d)"
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$out"
}
trap cleanup EXIT

echo "quality-smoke: building nulpa"
go build -o "$out/nulpa" ./cmd/nulpa

echo "quality-smoke: one-shot planted run with -quality"
"$out/nulpa" -algo nulpa -gen planted -n 2000 -deg 8 -seed 7 -quality \
    > "$out/run.out" 2>&1

grep -q '^quality: live Q' "$out/run.out" || {
    echo "quality-smoke: FAIL — no quality line in one-shot output" >&2
    cat "$out/run.out" >&2
    exit 1
}
grep -q '^census: ' "$out/run.out" || {
    echo "quality-smoke: FAIL — no census line in one-shot output" >&2
    cat "$out/run.out" >&2
    exit 1
}

# quality: live Q 0.621841 vs exact 0.621841 (drift 0.00e+00, max 1.20e-09 over 4 recomputes)
awk -v floor="$Q_FLOOR" -v dmax="$DRIFT_MAX" '
/^quality: live Q/ {
    live = $4 + 0
    exact = $7 + 0
    drift = $9; sub(/,$/, "", drift); drift += 0
    max = $11 + 0
    if (exact < floor) { printf "quality-smoke: FAIL — exact Q %.4f below planted floor %.2f\n", exact, floor; bad = 1 }
    d = live - exact; if (d < 0) d = -d
    if (d > dmax + 0) { printf "quality-smoke: FAIL — live %.6f vs exact %.6f beyond %.1e\n", live, exact, dmax; bad = 1 }
    if (max > dmax + 0) { printf "quality-smoke: FAIL — max sampled drift %g beyond %g\n", max, dmax; bad = 1 }
    found = 1
}
END {
    if (!found) { print "quality-smoke: FAIL — quality line not parsed"; exit 1 }
    exit bad
}' "$out/run.out" || { cat "$out/run.out" >&2; exit 1; }

echo "quality-smoke: one-shot drift and floor OK"

addr="127.0.0.1:17894"
echo "quality-smoke: live server on $addr"
"$out/nulpa" -serve "$addr" > "$out/serve.out" 2>&1 &
srv_pid=$!

i=0
until curl -sf "http://$addr/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "quality-smoke: FAIL — server never ready" >&2; cat "$out/serve.out" >&2; exit 1; }
    sleep 0.1
done

echo "quality-smoke: submitting quality-enabled job"
id=$(curl -sf -X POST "http://$addr/jobs" -H 'Content-Type: application/json' \
    -d '{"algo":"nulpa","graph":{"gen":"planted","n":2000,"deg":8,"seed":7},"quality":true}' \
    | sed -n 's/.*"id": *\([0-9][0-9]*\).*/\1/p' | head -1)
[ -n "$id" ] || { echo "quality-smoke: FAIL — no job id from POST /jobs" >&2; exit 1; }

i=0
state=""
while :; do
    body=$(curl -sf "http://$addr/jobs/$id")
    state=$(printf '%s' "$body" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    case "$state" in
        done) break ;;
        failed|canceled) echo "quality-smoke: FAIL — job $state: $body" >&2; exit 1 ;;
    esac
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "quality-smoke: FAIL — job never finished: $body" >&2; exit 1; }
    sleep 0.1
done
printf '%s' "$body" > "$out/status.json"

# The summary's modularity is the first "modularity" after the "quality"
# key (the status also carries a top-level modularity field, earlier).
status_q=$(awk '/"quality":/ { inq = 1 } inq && /"modularity":/ { gsub(/[",]/, "", $2); print $2; exit }' "$out/status.json")
[ -n "$status_q" ] || {
    echo "quality-smoke: FAIL — job status carries no quality summary" >&2
    cat "$out/status.json" >&2
    exit 1
}

echo "quality-smoke: scraping /metrics for engine_quality_run_modularity"
curl -sf "http://$addr/metrics" > "$out/metrics.out"
awk -v want="$status_q" -v floor="$Q_FLOOR" '
$1 ~ /^engine_quality_run_modularity\{detector="nulpa"\}/ {
    got = $2 + 0
    d = got - want; if (d < 0) d = -d
    if (d > 1e-6) { printf "quality-smoke: FAIL — metric %g vs job status %g\n", got, want; bad = 1 }
    if (got < floor) { printf "quality-smoke: FAIL — metric %g below floor %g\n", got, floor; bad = 1 }
    found = 1
}
END {
    if (!found) { print "quality-smoke: FAIL — engine_quality_run_modularity{detector=\"nulpa\"} not exposed"; exit 1 }
    exit bad
}' "$out/metrics.out" || { grep engine_quality "$out/metrics.out" >&2 || true; exit 1; }

grep -q '^engine_quality_recomputes_total' "$out/metrics.out" || {
    echo "quality-smoke: FAIL — engine_quality_recomputes_total not exposed" >&2
    exit 1
}

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=""

echo "quality-smoke: ok"
