#!/bin/sh
# health_smoke.sh — end-to-end check of the convergence health monitor: a
# faulted one-shot run must print per-iteration health lines and auto-dump a
# schema-valid flight bundle with the right reason; the schema descriptor
# must match the committed golden; and a live -serve instance must answer
# /readyz, stream >=1 SSE frame per iteration from /debug/live/{id}, and
# serve a valid bundle from /jobs/{id}/flight (all via cmd/healthcheck).
set -eu

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$out"
}
trap cleanup EXIT

# Build once: the server must be a real binary so `kill` reaches the process
# itself, not a `go run` wrapper.
echo "health-smoke: building nulpa + healthcheck"
go build -o "$out/nulpa" ./cmd/nulpa
go build -o "$out/healthcheck" ./cmd/healthcheck

echo "health-smoke: faulted one-shot with -health and -flight-out"
"$out/nulpa" -gen planted -n 2000 -deg 8 -seed 7 \
    -faults kernel=1,seed=2 -health -flight-out "$out/flight.json" \
    > "$out/run.out" 2>&1

grep -q 'degraded: simt backend faulted beyond recovery' "$out/run.out" || {
    echo "health-smoke: FAIL — kernel=1 run did not degrade to direct" >&2
    cat "$out/run.out" >&2
    exit 1
}
grep -q 'health iter=' "$out/run.out" || {
    echo "health-smoke: FAIL — no per-iteration health lines" >&2
    cat "$out/run.out" >&2
    exit 1
}
grep -q 'flight: wrote' "$out/run.out" || {
    echo "health-smoke: FAIL — flight bundle not written" >&2
    cat "$out/run.out" >&2
    exit 1
}

echo "health-smoke: validating flight bundle (reason degraded)"
"$out/healthcheck" -reason degraded "$out/flight.json"

echo "health-smoke: schema descriptor vs golden"
"$out/healthcheck" -schema > "$out/schema.json"
diff -u internal/health/testdata/flight_schema.golden.json "$out/schema.json" || {
    echo "health-smoke: FAIL — flight schema drifted from golden" >&2
    echo "regenerate with: go run ./cmd/healthcheck -schema > internal/health/testdata/flight_schema.golden.json" >&2
    exit 1
}

addr="127.0.0.1:17893"
echo "health-smoke: live server on $addr"
"$out/nulpa" -serve "$addr" > "$out/serve.out" 2>&1 &
srv_pid=$!

"$out/healthcheck" -live "http://$addr" -frames 3 || {
    echo "health-smoke: FAIL — live check against $addr" >&2
    cat "$out/serve.out" >&2
    exit 1
}

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=""

echo "health-smoke: ok"
