#!/bin/sh
# trace_smoke.sh — end-to-end check of the span tracing pipeline: run a small
# ν-LPA detection with -trace-out, then validate the JSONL export with
# cmd/tracecheck (schema-clean spans, and one trace connecting
# run → detect → iteration → kernel). Also exercises both log formats so a
# bad slog wiring fails here rather than in production.
set -eu

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "trace-smoke: one-shot run with JSONL export (json logs)"
go run ./cmd/nulpa -gen planted -n 2000 -deg 8 -seed 7 \
    -trace-out "$out/spans.jsonl" -log-format json 2> "$out/log.json"

echo "trace-smoke: validating span export"
go run ./cmd/tracecheck "$out/spans.jsonl"

# The json log stream must be machine-readable line JSON naming the trace.
if ! grep -q '"msg":"run finished"' "$out/log.json"; then
    echo "trace-smoke: FAIL — no 'run finished' JSON log line" >&2
    cat "$out/log.json" >&2
    exit 1
fi
if ! grep -q '"trace":"' "$out/log.json"; then
    echo "trace-smoke: FAIL — log lines carry no trace id" >&2
    cat "$out/log.json" >&2
    exit 1
fi

echo "trace-smoke: text log format"
go run ./cmd/nulpa -gen planted -n 2000 -deg 8 -seed 7 \
    -trace-out "$out/spans2.jsonl" -log-format text 2> "$out/log.txt" > /dev/null
grep -q 'msg="run finished"' "$out/log.txt" || {
    echo "trace-smoke: FAIL — no 'run finished' text log line" >&2
    cat "$out/log.txt" >&2
    exit 1
}

echo "trace-smoke: ok"
