#!/bin/sh
# lint_tree.sh — keep the source tree clean: everything under internal/ and
# cmd/ must be a Go source file, a testdata fixture, or a directory. Editor
# droppings, stray binaries (a `go build` dropped next to its main package),
# and half-merged artifacts have landed in the tree before; this gate fails
# the build the moment one appears.
set -eu

cd "$(dirname "$0")/.."

bad=$(find internal cmd -type f \
    ! -name '*.go' \
    ! -path '*/testdata/*' \
    | sort)

if [ -n "$bad" ]; then
    echo "lint_tree: non-Go files under internal/ or cmd/ (move to testdata/ or delete):"
    echo "$bad" | sed 's/^/  /'
    exit 1
fi

# Directory names must be importable Go package paths: lowercase alphanumeric
# (plus testdata). Anything else — spaces, double underscores from merge
# tools, uppercase — is a stray.
baddir=$(find internal cmd -type d -name testdata -prune -o -type d -print \
    | grep -vE '^(internal|cmd)$' \
    | grep -vE '^(internal|cmd)(/[a-z][a-z0-9]*)+$' || true)

if [ -n "$baddir" ]; then
    echo "lint_tree: suspicious directory names under internal/ or cmd/:"
    echo "$baddir" | sed 's/^/  /'
    exit 1
fi

echo "lint_tree: source tree OK"
