// Package nulpabench holds the top-level testing.B benchmarks, one per
// table and figure of the paper's evaluation. Each benchmark times the same
// code path the corresponding cmd/bench experiment runs, on the small-scale
// dataset stand-ins, and reports modularity as a custom metric where the
// figure is about quality. Regenerate the full tables with:
//
//	go run ./cmd/bench -experiment all -scale medium -reps 3
package nulpabench

import (
	"fmt"
	"testing"

	"nulpa/internal/bench"
	"nulpa/internal/flpa"
	"nulpa/internal/graph"
	"nulpa/internal/gunrock"
	"nulpa/internal/gvelpa"
	"nulpa/internal/hashtable"
	"nulpa/internal/louvain"
	"nulpa/internal/nulpa"
	"nulpa/internal/plp"
	"nulpa/internal/quality"
	"nulpa/internal/simt"
)

// benchGraphs is the representative per-class subset used by the Go
// benchmarks (the full 13-graph sweep lives in cmd/bench).
var benchGraphs = []string{"indochina-2004", "com-Orkut", "asia_osm", "kmer_A2a"}

func eachGraph(b *testing.B, f func(b *testing.B, g *graph.CSR)) {
	for _, name := range benchGraphs {
		g := bench.Graph(name, bench.Small)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(g.NumArcs() * 8) // arcs/sec proxy: 4B target + 4B weight
			f(b, g)
		})
	}
}

func runNuLPA(b *testing.B, g *graph.CSR, opt nulpa.Options) *nulpa.Result {
	b.Helper()
	var res *nulpa.Result
	var err error
	for i := 0; i < b.N; i++ {
		if opt.Backend == nulpa.BackendSIMT {
			opt.Device = simt.NewDevice(0)
		}
		res, err = nulpa.Detect(g, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(quality.Modularity(g, res.Labels), "modularity")
	return res
}

// BenchmarkFigSwapPrevention regenerates Figure 1's runtime axis: the three
// headline swap-mitigation configurations (unmitigated, the fastest CC, the
// paper's PL4).
func BenchmarkFigSwapPrevention(b *testing.B) {
	configs := []struct {
		name     string
		pickLess int
		cross    int
	}{{"none", 0, 0}, {"CC2", 0, 2}, {"PL4", 4, 0}, {"H-PL4-CC2", 4, 2}}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			eachGraph(b, func(b *testing.B, g *graph.CSR) {
				opt := nulpa.DefaultOptions()
				opt.Probing = hashtable.Double // the paper's setting for this sweep
				opt.PickLessEvery = c.pickLess
				opt.CrossCheckEvery = c.cross
				runNuLPA(b, g, opt)
			})
		})
	}
}

// BenchmarkFigProbing regenerates Figure 3: the four collision resolution
// strategies of the per-vertex hashtable.
func BenchmarkFigProbing(b *testing.B) {
	for _, pr := range []hashtable.Probing{hashtable.Linear, hashtable.Quadratic, hashtable.Double, hashtable.QuadraticDouble} {
		b.Run(pr.String(), func(b *testing.B) {
			eachGraph(b, func(b *testing.B, g *graph.CSR) {
				opt := nulpa.DefaultOptions()
				opt.Probing = pr
				runNuLPA(b, g, opt)
			})
		})
	}
}

// BenchmarkFigSwitchDegree regenerates Figure 4: the thread-per-vertex vs
// block-per-vertex switch degree sweep.
func BenchmarkFigSwitchDegree(b *testing.B) {
	for _, sd := range []int{2, 8, 32, 128, 256} {
		b.Run(fmt.Sprintf("switch-%d", sd), func(b *testing.B) {
			eachGraph(b, func(b *testing.B, g *graph.CSR) {
				opt := nulpa.DefaultOptions()
				opt.SwitchDegree = sd
				runNuLPA(b, g, opt)
			})
		})
	}
}

// BenchmarkFigValueType regenerates Figure 5: float32 vs float64 hashtable
// values.
func BenchmarkFigValueType(b *testing.B) {
	for _, k := range []hashtable.ValueKind{hashtable.Float32, hashtable.Float64} {
		b.Run(k.String(), func(b *testing.B) {
			eachGraph(b, func(b *testing.B, g *graph.CSR) {
				opt := nulpa.DefaultOptions()
				opt.ValueKind = k
				runNuLPA(b, g, opt)
			})
		})
	}
}

// BenchmarkFigCoalesced regenerates the appendix figure: open addressing vs
// coalesced chaining.
func BenchmarkFigCoalesced(b *testing.B) {
	for _, coal := range []bool{false, true} {
		name := "open-addressing"
		if coal {
			name = "coalesced"
		}
		b.Run(name, func(b *testing.B) {
			eachGraph(b, func(b *testing.B, g *graph.CSR) {
				opt := nulpa.DefaultOptions()
				opt.Coalesced = coal
				runNuLPA(b, g, opt)
			})
		})
	}
}

// BenchmarkFigCompare regenerates Figure 6's runtime axis: every
// implementation on every benchmark graph. Modularity is attached as a
// metric, covering Figure 6c.
func BenchmarkFigCompare(b *testing.B) {
	b.Run("FLPA", func(b *testing.B) {
		eachGraph(b, func(b *testing.B, g *graph.CSR) {
			var labels []uint32
			for i := 0; i < b.N; i++ {
				labels = must(flpa.Detect(g, flpa.DefaultOptions())).Labels
			}
			b.ReportMetric(quality.Modularity(g, labels), "modularity")
		})
	})
	b.Run("NetworKit-PLP", func(b *testing.B) {
		eachGraph(b, func(b *testing.B, g *graph.CSR) {
			var labels []uint32
			for i := 0; i < b.N; i++ {
				labels = must(plp.Detect(g, plp.DefaultOptions())).Labels
			}
			b.ReportMetric(quality.Modularity(g, labels), "modularity")
		})
	})
	b.Run("GVE-LPA", func(b *testing.B) {
		eachGraph(b, func(b *testing.B, g *graph.CSR) {
			var labels []uint32
			for i := 0; i < b.N; i++ {
				labels = must(gvelpa.Detect(g, gvelpa.DefaultOptions())).Labels
			}
			b.ReportMetric(quality.Modularity(g, labels), "modularity")
		})
	})
	b.Run("Gunrock-LPA", func(b *testing.B) {
		eachGraph(b, func(b *testing.B, g *graph.CSR) {
			var labels []uint32
			for i := 0; i < b.N; i++ {
				labels = must(gunrock.Detect(g, gunrock.DefaultOptions())).Labels
			}
			b.ReportMetric(quality.Modularity(g, labels), "modularity")
		})
	})
	b.Run("Louvain", func(b *testing.B) {
		eachGraph(b, func(b *testing.B, g *graph.CSR) {
			var labels []uint32
			for i := 0; i < b.N; i++ {
				labels = must(louvain.Detect(g, louvain.DefaultOptions())).Labels
			}
			b.ReportMetric(quality.Modularity(g, labels), "modularity")
		})
	})
	b.Run("nuLPA-simt", func(b *testing.B) {
		eachGraph(b, func(b *testing.B, g *graph.CSR) {
			runNuLPA(b, g, nulpa.DefaultOptions())
		})
	})
	b.Run("nuLPA-direct", func(b *testing.B) {
		eachGraph(b, func(b *testing.B, g *graph.CSR) {
			opt := nulpa.DefaultOptions()
			opt.Backend = nulpa.BackendDirect
			runNuLPA(b, g, opt)
		})
	})
}

// BenchmarkTabDataset regenerates Table 1's |Γ| column workload: a default
// ν-LPA run over one stand-in per dataset class, reporting the community
// count found.
func BenchmarkTabDataset(b *testing.B) {
	eachGraph(b, func(b *testing.B, g *graph.CSR) {
		res := runNuLPA(b, g, nulpa.DefaultOptions())
		b.ReportMetric(float64(quality.CountCommunities(res.Labels)), "communities")
	})
}

// must unwraps a detector result in tests where no error is expected
// (no context or fault injection is configured on these runs).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
