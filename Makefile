# Developer entry points. `make check` is the pre-commit gate: static vetting
# plus the race-enabled short test suite (the telemetry layer's concurrent SM
# reporting must stay race-clean).

GO ?= go

.PHONY: check build vet lint test test-full bench chaos trace-smoke perfdiff-smoke shard-smoke health-smoke load-smoke quality-smoke

check: vet lint test chaos shard-smoke trace-smoke health-smoke load-smoke quality-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Import layering: algorithm packages meet only through the engine registry.
# Tree hygiene: no non-Go artifacts under internal/.
lint:
	sh scripts/lint_imports.sh
	sh scripts/lint_tree.sh

test:
	$(GO) test -race -short ./...

# Full suite without the race detector (what CI tier-1 runs).
test-full:
	$(GO) test ./...

# Chaos conformance: fault injection, cancellation, and recovery under -race.
# Every detector under a fault schedule must converge to a valid partition or
# return a typed error — never hang, never panic.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Cancel|Deadline' \
		./internal/engine/ ./internal/nulpa/ ./internal/simt/ ./internal/faults/ \
		./internal/httpapi/ ./internal/health/

# Shard smoke: the multi-device backend end to end under -race — partition
# and halo construction, the BSP superstep loop, conformance (determinism,
# partition validity, modularity floor), and single-shard fault recovery.
shard-smoke:
	$(GO) test -race -count=1 -run 'Shard|Partition|Conformance' \
		./internal/engine/ ./internal/nulpa/ ./internal/shard/ ./internal/partition/

# Trace smoke: run a small detection with -trace-out and validate the JSONL
# span export with cmd/tracecheck (schema + run→detect→iteration→kernel
# connectivity), plus both -log-format modes.
trace-smoke:
	sh scripts/trace_smoke.sh

# Health smoke: faulted one-shot must emit per-iteration health lines and a
# schema-valid flight dump (reason degraded); live server must stream >=1 SSE
# frame per iteration and serve /jobs/{id}/flight (validated by
# cmd/healthcheck, schema pinned to the committed golden).
health-smoke:
	sh scripts/health_smoke.sh

# Load smoke: overload the serving plane end to end — tiny device pool, an
# open-loop storm from cmd/loadgen, then a fault-injected chaos run. Gates on
# zero lost jobs, Retry-After on every shed, a balanced /debug/vars ledger,
# and a bench-history entry for the run.
load-smoke:
	sh scripts/load_smoke.sh

# Quality smoke: the quality telemetry plane end to end — a planted-partition
# one-shot with -quality must land above the modularity floor with estimator
# drift inside the 1e-6 budget, and a quality-enabled job on a live server
# must surface its final modularity both on the job status and as
# engine_quality_run_modularity on /metrics, the two agreeing.
quality-smoke:
	sh scripts/quality_smoke.sh

# Perfdiff smoke: bench twice into one history file, diff the pair with
# cmd/perfdiff, and validate the attribution report (coverage of the work
# counters, golden JSON schema, Chrome counter export).
perfdiff-smoke:
	sh scripts/perfdiff_smoke.sh

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/bench/
