// Groundtruth: evaluate the detection engine's algorithms against planted
// ground-truth communities with NMI — the complement to modularity the paper
// cites (LPA achieves high NMI relative to ground truth even where its
// modularity trails Louvain). Every method is reached through the engine
// registry, so adding an algorithm name to the list below is the whole
// change needed to extend the comparison.
//
// Run with: go run ./examples/groundtruth
package main

import (
	"fmt"
	"log"

	"nulpa/internal/engine"
	_ "nulpa/internal/engine/all"
	"nulpa/internal/gen"
	"nulpa/internal/quality"
)

func main() {
	// Moderately noisy planted partition: hard enough to separate the
	// methods, easy enough that good ones score NMI near 1.
	g, truth := gen.Planted(gen.PlantedConfig{
		N: 10000, Communities: 50, DegIn: 10, DegOut: 2, Seed: 23,
	})
	fmt.Printf("planted graph: %d vertices, %d edges, 50 communities\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%-15s %10s %8s %12s %8s\n", "method", "time", "NMI", "modularity", "comms")

	for _, name := range []string{"nulpa-direct", "flpa", "plp", "gvelpa", "gunrock", "louvain"} {
		det, err := engine.MustGet(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := det.Detect(g, engine.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %10v %8.3f %12.4f %8d\n", name, res.Duration.Round(1000),
			quality.NMI(res.Labels, truth), quality.Modularity(g, res.Labels),
			res.Communities)
	}
}
