// Groundtruth: evaluate all six algorithms against planted ground-truth
// communities with NMI — the complement to modularity the paper cites (LPA
// achieves high NMI relative to ground truth even where its modularity
// trails Louvain).
//
// Run with: go run ./examples/groundtruth
package main

import (
	"fmt"
	"log"
	"time"

	"nulpa/internal/flpa"
	"nulpa/internal/gen"
	"nulpa/internal/gunrock"
	"nulpa/internal/gvelpa"
	"nulpa/internal/louvain"
	"nulpa/internal/nulpa"
	"nulpa/internal/plp"
	"nulpa/internal/quality"
)

func main() {
	// Moderately noisy planted partition: hard enough to separate the
	// methods, easy enough that good ones score NMI near 1.
	g, truth := gen.Planted(gen.PlantedConfig{
		N: 10000, Communities: 50, DegIn: 10, DegOut: 2, Seed: 23,
	})
	fmt.Printf("planted graph: %d vertices, %d edges, 50 communities\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%-15s %10s %8s %12s %8s\n", "method", "time", "NMI", "modularity", "comms")

	report := func(name string, d time.Duration, labels []uint32) {
		fmt.Printf("%-15s %10v %8.3f %12.4f %8d\n", name, d.Round(1000),
			quality.NMI(labels, truth), quality.Modularity(g, labels),
			quality.CountCommunities(labels))
	}

	opt := nulpa.DefaultOptions()
	opt.Backend = nulpa.BackendDirect
	if res, err := nulpa.Detect(g, opt); err == nil {
		report("nu-LPA", res.Duration, res.Labels)
	} else {
		log.Fatal(err)
	}
	r1 := flpa.Detect(g, flpa.DefaultOptions())
	report("FLPA", r1.Duration, r1.Labels)
	r2 := plp.Detect(g, plp.DefaultOptions())
	report("NetworKit PLP", r2.Duration, r2.Labels)
	r3 := gvelpa.Detect(g, gvelpa.DefaultOptions())
	report("GVE-LPA", r3.Duration, r3.Labels)
	r4 := gunrock.Detect(g, gunrock.DefaultOptions())
	report("Gunrock LPA", r4.Duration, r4.Labels)
	r5 := louvain.Detect(g, louvain.DefaultOptions())
	report("Louvain", r5.Duration, r5.Labels)
}
