// Partition: the paper's future-work application — balanced k-way graph
// partitioning with size-constrained label propagation. Partitions a road
// network into k balanced regions and reports edge cut against a random
// assignment baseline.
//
// Run with: go run ./examples/partition
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nulpa/internal/gen"
	"nulpa/internal/partition"
	"nulpa/internal/quality"
)

func main() {
	g := gen.Road(gen.DefaultRoad(50000, 21))
	fmt.Printf("road network: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%5s %12s %12s %10s %10s\n", "k", "cut frac", "random cut", "imbalance", "time")

	for _, k := range []int{2, 4, 8, 16, 32} {
		res, err := partition.Partition(g, partition.DefaultOptions(k))
		if err != nil {
			log.Fatal(err)
		}
		// Random baseline at the same k.
		rng := rand.New(rand.NewSource(int64(k)))
		random := make([]uint32, g.NumVertices())
		for i := range random {
			random[i] = uint32(rng.Intn(k))
		}
		_, randomFrac := quality.EdgeCut(g, random)
		fmt.Printf("%5d %11.1f%% %11.1f%% %9.1f%% %10v\n",
			k, 100*res.CutFraction, 100*randomFrac, 100*res.Imbalance,
			res.Duration.Round(1000))
	}
	fmt.Println("\neach part is bounded by 1.05 · N/k vertices (ε = 0.05)")
}
