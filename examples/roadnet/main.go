// Roadnet: community detection as a graph-partitioning primitive on a road
// network — the application the paper's conclusion points to. Road networks
// are where ν-LPA beats FLPA on quality in the paper's Figure 6c; this
// example reproduces that comparison through the engine registry and reports
// the edge cut of the resulting partition.
//
// Run with: go run ./examples/roadnet
package main

import (
	"fmt"
	"log"

	"nulpa/internal/engine"
	_ "nulpa/internal/engine/all"
	"nulpa/internal/gen"
	"nulpa/internal/graph"
	"nulpa/internal/quality"
)

func main() {
	g := gen.Road(gen.DefaultRoad(40000, 11))
	fmt.Printf("road network stand-in: %d junctions/segments, %d road links, avg degree %.1f\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	nu := detect(g, "nulpa-direct")
	fl := detect(g, "flpa")

	qNu := quality.Modularity(g, nu.Labels)
	qFl := quality.Modularity(g, fl.Labels)
	fmt.Printf("nu-LPA: %8v  Q=%.4f  regions=%d  cut=%.1f%%\n",
		nu.Duration.Round(1000), qNu, nu.Communities, 100*cutFraction(g, nu.Labels))
	fmt.Printf("FLPA:   %8v  Q=%.4f  regions=%d  cut=%.1f%%\n",
		fl.Duration.Round(1000), qFl, fl.Communities, 100*cutFraction(g, fl.Labels))
	fmt.Printf("\nmodularity advantage of nu-LPA over FLPA: %+.1f%% (paper: +4.7%% on road/k-mer classes)\n",
		100*(qNu-qFl)/qFl)
}

func detect(g *graph.CSR, name string) *engine.Result {
	det, err := engine.MustGet(name)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Detect(g, engine.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// cutFraction returns the fraction of edges crossing region boundaries —
// the partitioning quality a road-network application cares about.
func cutFraction(g *graph.CSR, labels []uint32) float64 {
	var cut, total float64
	for u := 0; u < g.NumVertices(); u++ {
		ts, ws := g.Neighbors(graph.Vertex(u))
		for k, v := range ts {
			total += float64(ws[k])
			if labels[u] != labels[v] {
				cut += float64(ws[k])
			}
		}
	}
	if total == 0 {
		return 0
	}
	return cut / total
}
