// Overlap: overlapping community detection with SLPA on a social network —
// the capability the multi-label variants add over plain LPA — plus a
// drill-down into the largest community with an induced subgraph.
//
// SLPA is dispatched through the engine registry like every other method;
// the overlapping memberships live in the native result, recovered from
// Result.Extra (the engine's escape hatch for algorithm-specific output).
//
// Run with: go run ./examples/overlap
package main

import (
	"fmt"
	"log"
	"sort"

	"nulpa/internal/engine"
	_ "nulpa/internal/engine/all"
	"nulpa/internal/gen"
	"nulpa/internal/graph"
	"nulpa/internal/quality"
	"nulpa/internal/variants"
)

func main() {
	g, truth := gen.Social(gen.DefaultSocial(5000, 16, 33))
	fmt.Printf("social network: %d users, %d ties\n\n", g.NumVertices(), g.NumEdges())

	det, err := engine.MustGet("slpa")
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Detect(g, engine.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLPA: %v, %d disjoint communities (NMI vs planted %.3f)\n",
		res.Duration.Round(1000), res.Communities,
		quality.NMI(res.Labels, truth))

	// The engine result carries the disjoint projection; the overlapping
	// memory lives in the native SLPA result riding along in Extra.
	native := res.Extra.(*variants.SLPAResult)

	// Overlap extraction at different memory thresholds.
	fmt.Println("\noverlapping membership by threshold:")
	for _, frac := range []float64{0.05, 0.15, 0.30} {
		over := native.OverlapThreshold(frac)
		multi := 0
		total := 0
		for _, ls := range over {
			total += len(ls)
			if len(ls) > 1 {
				multi++
			}
		}
		fmt.Printf("  r=%.2f: %5.1f%% of users in >1 community, %.2f memberships/user\n",
			frac, 100*float64(multi)/float64(len(over)), float64(total)/float64(len(over)))
	}

	// Drill into the largest community.
	sizes := quality.CommunitySizes(res.Labels)
	type kv struct {
		c uint32
		n int
	}
	var all []kv
	for c, n := range sizes {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	big := all[0]
	sub, members := graph.CommunitySubgraph(g, res.Labels, big.c)
	st := graph.ComputeStats(sub)
	fmt.Printf("\nlargest community (%d members): internal %s\n", big.n, st)
	_, frac := quality.EdgeCut(g, res.Labels)
	fmt.Printf("global edge cut: %.1f%%; community %d's first members: %v...\n",
		100*frac, big.c, members[:min(5, len(members))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
