// Overlap: overlapping community detection with SLPA on a social network —
// the capability the multi-label variants add over plain LPA — plus a
// drill-down into the largest community with an induced subgraph.
//
// Run with: go run ./examples/overlap
package main

import (
	"fmt"
	"sort"

	"nulpa/internal/gen"
	"nulpa/internal/graph"
	"nulpa/internal/quality"
	"nulpa/internal/variants"
)

func main() {
	g, truth := gen.Social(gen.DefaultSocial(5000, 16, 33))
	fmt.Printf("social network: %d users, %d ties\n\n", g.NumVertices(), g.NumEdges())

	res := variants.SLPA(g, variants.DefaultSLPAOptions())
	fmt.Printf("SLPA: %v, %d disjoint communities (NMI vs planted %.3f)\n",
		res.Duration.Round(1000), quality.CountCommunities(res.Labels),
		quality.NMI(res.Labels, truth))

	// Overlap extraction at different memory thresholds.
	fmt.Println("\noverlapping membership by threshold:")
	for _, frac := range []float64{0.05, 0.15, 0.30} {
		over := res.OverlapThreshold(frac)
		multi := 0
		total := 0
		for _, ls := range over {
			total += len(ls)
			if len(ls) > 1 {
				multi++
			}
		}
		fmt.Printf("  r=%.2f: %5.1f%% of users in >1 community, %.2f memberships/user\n",
			frac, 100*float64(multi)/float64(len(over)), float64(total)/float64(len(over)))
	}

	// Drill into the largest community.
	sizes := quality.CommunitySizes(res.Labels)
	type kv struct {
		c uint32
		n int
	}
	var all []kv
	for c, n := range sizes {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	big := all[0]
	sub, members := graph.CommunitySubgraph(g, res.Labels, big.c)
	st := graph.ComputeStats(sub)
	fmt.Printf("\nlargest community (%d members): internal %s\n", big.n, st)
	_, frac := quality.EdgeCut(g, res.Labels)
	fmt.Printf("global edge cut: %.1f%%; community %d's first members: %v...\n",
		100*frac, big.c, members[:min(5, len(members))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
