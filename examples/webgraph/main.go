// Webgraph: the paper's headline use case — community detection on a web
// crawl. Compares ν-LPA against Louvain on a copy-model web graph through
// the engine registry: LPA-class speed at somewhat lower modularity (the
// paper's trade-off: 37× faster, −9.6% modularity).
//
// Run with: go run ./examples/webgraph
package main

import (
	"fmt"
	"log"
	"sort"

	"nulpa/internal/engine"
	_ "nulpa/internal/engine/all"
	"nulpa/internal/gen"
	"nulpa/internal/graph"
	"nulpa/internal/quality"
)

func main() {
	g := gen.Web(gen.DefaultWeb(30000, 8, 7))
	fmt.Printf("web crawl stand-in: %d pages, %d links\n", g.NumVertices(), g.NumEdges())

	// ν-LPA, direct multicore backend (the fair-timing mode).
	nu := detect(g, "nulpa-direct")
	qNu := quality.Modularity(g, nu.Labels)
	fmt.Printf("nu-LPA:  %8v  Q=%.4f  communities=%d\n",
		nu.Duration.Round(1000), qNu, nu.Communities)

	lv := detect(g, "louvain")
	qLv := quality.Modularity(g, lv.Labels)
	fmt.Printf("louvain: %8v  Q=%.4f  communities=%d\n",
		lv.Duration.Round(1000), qLv, lv.Communities)

	fmt.Printf("\nspeedup %.1f×, modularity gap %+.1f%%\n",
		float64(lv.Duration)/float64(nu.Duration), 100*(qNu-qLv)/qLv)

	// The largest communities are the "hosts" of the crawl.
	sizes := quality.CommunitySizes(nu.Labels)
	type kv struct {
		c uint32
		n int
	}
	var all []kv
	for c, n := range sizes {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	fmt.Println("\nlargest communities (host clusters):")
	for i := 0; i < 5 && i < len(all); i++ {
		fmt.Printf("  community %-8d %6d pages\n", all[i].c, all[i].n)
	}
}

func detect(g *graph.CSR, name string) *engine.Result {
	det, err := engine.MustGet(name)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Detect(g, engine.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	return res
}
