// Socialnet: sweep the swap-mitigation methods on a social network running
// on the simulated GPU — a miniature of the paper's Figure 1 showing why
// Pick-Less every 4 iterations (PL4) is the published choice.
//
// Run with: go run ./examples/socialnet
package main

import (
	"fmt"
	"log"

	"nulpa/internal/gen"
	"nulpa/internal/nulpa"
	"nulpa/internal/quality"
	"nulpa/internal/simt"
)

func main() {
	g, _ := gen.Social(gen.DefaultSocial(8000, 16, 19)) // heavy-tailed, planted communities
	fmt.Printf("social network stand-in: %d users, %d ties\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%-10s %9s %7s %6s %10s\n", "method", "time", "iters", "conv", "modularity")

	run := func(name string, pl, cc int) {
		opt := nulpa.DefaultOptions()
		opt.PickLessEvery = pl
		opt.CrossCheckEvery = cc
		opt.Device = simt.NewDevice(0)
		res, err := nulpa.Detect(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9v %7d %6v %10.4f\n",
			name, res.Duration.Round(1000), res.Iterations, res.Converged,
			quality.Modularity(g, res.Labels))
	}

	run("none", 0, 0) // unmitigated: may burn all 20 iterations on swaps
	for i := 1; i <= 4; i++ {
		run(fmt.Sprintf("CC%d", i), 0, i)
	}
	for i := 1; i <= 4; i++ {
		run(fmt.Sprintf("PL%d", i), i, 0)
	}
	run("H(2,2)", 2, 2)

	fmt.Println("\npaper: PL4 gives the best modularity at ~8% over the fastest method's runtime")
}
