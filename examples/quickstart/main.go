// Quickstart: detect communities in a small social network with ν-LPA's
// default (paper) configuration and print what was found.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nulpa/internal/gen"
	"nulpa/internal/nulpa"
	"nulpa/internal/quality"
)

func main() {
	// A graph with 8 planted communities — DegIn >> DegOut makes them easy
	// to see, so this doubles as a sanity check of the whole pipeline.
	g, truth := gen.Planted(gen.PlantedConfig{
		N: 2000, Communities: 8, DegIn: 12, DegOut: 1, Seed: 42,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// ν-LPA with the paper's defaults: Pick-Less every 4 iterations,
	// quadratic-double probing, float32 hashtable values, switch degree 32.
	res, err := nulpa.Detect(g, nulpa.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	sum := quality.Summarize(g, res.Labels)
	fmt.Printf("detected: %s\n", sum)
	fmt.Printf("iterations: %d (converged: %v) in %v\n", res.Iterations, res.Converged, res.Duration)
	fmt.Printf("agreement with planted truth (NMI): %.3f\n", quality.NMI(res.Labels, truth))
}
